//! Window classifiers: linear SVM and the Eedn-constrained network.

use crate::error::{Error, Result};
use pcnn_eedn::activation::HardSigmoid;
use pcnn_eedn::fc::GroupedLinear;
use pcnn_eedn::mapping::check_crossbar_fit;
use pcnn_eedn::permute::Permute;
use pcnn_eedn::tensor::Tensor;
use pcnn_eedn::{Dataset, Sequential};
use pcnn_svm::{FeatureScaler, LinearSvm};
use serde::{Deserialize, Serialize};
use std::ops::ControlFlow;

/// A trained classifier scoring window descriptors (higher = more
/// person-like).
pub enum WindowClassifier {
    /// Linear SVM (with its fitted feature scaler).
    Svm {
        /// The trained model.
        model: LinearSvm,
        /// The feature standardizer fitted on training descriptors.
        scaler: FeatureScaler,
    },
    /// Eedn-constrained network, boxed: the classifier (network plus
    /// its inference scratch) dwarfs the SVM variant, so indirection
    /// keeps the enum itself small.
    Eedn(Box<EednClassifier>),
}

impl std::fmt::Debug for WindowClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowClassifier::Svm { model, .. } => {
                f.debug_struct("WindowClassifier::Svm").field("dim", &model.dim()).finish()
            }
            WindowClassifier::Eedn(c) => f
                .debug_struct("WindowClassifier::Eedn")
                .field("dim", &c.in_dim)
                .field("cores", &c.core_count)
                .finish(),
        }
    }
}

impl WindowClassifier {
    /// Scores one descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor dimensionality mismatches the training
    /// dimensionality.
    pub fn score(&self, descriptor: &[f32]) -> f32 {
        match self {
            WindowClassifier::Svm { model, scaler } => model.score(&scaler.apply(descriptor)),
            WindowClassifier::Eedn(c) => c.score(descriptor),
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            WindowClassifier::Svm { .. } => "SVM",
            WindowClassifier::Eedn(_) => "Eedn",
        }
    }
}

/// Configuration of the Eedn window classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EednClassifierConfig {
    /// First hidden width (grouped to fit crossbars).
    pub hidden1: usize,
    /// Second hidden width.
    pub hidden2: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate (Adam).
    pub lr: f32,
    /// Seed for init and batching.
    pub seed: u64,
}

impl Default for EednClassifierConfig {
    fn default() -> Self {
        EednClassifierConfig {
            hidden1: 240,
            hidden2: 120,
            epochs: 30,
            batch: 32,
            lr: 0.002,
            seed: 0xC1A5,
        }
    }
}

/// The Eedn-constrained window classifier: three grouped trinary layers
/// with hard-sigmoid activations, trained with softmax cross-entropy.
///
/// Group counts are chosen so every layer fits the 256×256 crossbar with
/// the pos/neg axon convention (fan-in ≤ 127 per group); the resulting
/// core count is the resource metric of §5.1.
pub struct EednClassifier {
    net: Sequential,
    scaler: FeatureScaler,
    in_dim: usize,
    core_count: usize,
}

impl std::fmt::Debug for EednClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EednClassifier")
            .field("in_dim", &self.in_dim)
            .field("cores", &self.core_count)
            .finish()
    }
}

/// A serializable snapshot of an [`EednClassifier`]'s learned state.
///
/// The classifier's topology is fixed (three grouped trinary layers with
/// hard-sigmoid activations and two inter-layer permutations), so the
/// state is exactly the three [`GroupedLinear`] layers — including their
/// Adam moment estimates, so a restored network continues optimizing
/// bit-identically — plus the two permutation tables and the fitted
/// feature scaler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EednClassifierState {
    /// Input dimensionality.
    pub in_dim: usize,
    /// TrueNorth cores the classifier occupies.
    pub core_count: usize,
    /// The fitted feature standardizer.
    pub scaler: FeatureScaler,
    /// First grouped layer, with optimizer state.
    pub l1: GroupedLinear,
    /// Permutation table between layers 1 and 2.
    pub perm1: Vec<usize>,
    /// Second grouped layer, with optimizer state.
    pub l2: GroupedLinear,
    /// Permutation table between layers 2 and 3.
    pub perm2: Vec<usize>,
    /// Output layer, with optimizer state.
    pub l3: GroupedLinear,
}

/// One per-epoch training checkpoint emitted by
/// [`EednClassifier::try_train_with`].
///
/// `epoch` counts *completed* epochs; resuming from this checkpoint
/// continues with epoch index `epoch`. Because the training loop derives
/// each epoch's batch order from `config.seed ^ (0x100 + epoch)`, no
/// mid-stream RNG state needs to be carried: `rng_state` records the
/// seed the per-epoch orders derive from, and a resumed run replays the
/// exact batch sequence an uninterrupted run would have seen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EednCheckpoint {
    /// Number of completed epochs.
    pub epoch: usize,
    /// The configuration of the interrupted run (resume validates it).
    pub config: EednClassifierConfig,
    /// Base seed that per-epoch batch orders derive from.
    pub rng_state: u64,
    /// Mean batch loss over the epoch just completed.
    pub epoch_loss: f32,
    /// The full learned state (weights + Adam moments + scaler).
    pub state: EednClassifierState,
}

/// Extracts the serializable state from a live network.
///
/// The topology is fixed by construction (layers 0/3/6 are the grouped
/// linears, 2/5 the permutations), so the downcasts cannot fail on a
/// classifier this module built.
fn state_of(
    net: &Sequential,
    scaler: &FeatureScaler,
    in_dim: usize,
    core_count: usize,
) -> EednClassifierState {
    let linear = |i: usize| -> GroupedLinear {
        net.layer_as::<GroupedLinear>(i).expect("eedn classifier has a fixed topology").clone()
    };
    let perm = |i: usize| -> Vec<usize> {
        net.layer_as::<Permute>(i).expect("eedn classifier has a fixed topology").table().to_vec()
    };
    EednClassifierState {
        in_dim,
        core_count,
        scaler: scaler.clone(),
        l1: linear(0),
        perm1: perm(2),
        l2: linear(3),
        perm2: perm(5),
        l3: linear(6),
    }
}

/// Picks the smallest group count that divides both dims and keeps the
/// per-group fan-in within the crossbar (127 with the ± convention).
fn pick_groups(in_dim: usize, out_dim: usize) -> usize {
    for g in 1..=in_dim {
        if in_dim.is_multiple_of(g) && out_dim.is_multiple_of(g) && in_dim / g <= 127 {
            return g;
        }
    }
    in_dim
}

impl EednClassifier {
    /// Trains the classifier on labelled descriptors.
    ///
    /// Thin panicking wrapper over
    /// [`try_train`](EednClassifier::try_train), kept for tests and
    /// scripts where aborting is acceptable.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or single-class, or if a layer
    /// cannot be mapped onto TrueNorth crossbars.
    pub fn train(descriptors: &[Vec<f32>], labels: &[bool], config: EednClassifierConfig) -> Self {
        Self::try_train(descriptors, labels, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains the classifier on labelled descriptors, reporting dataset
    /// and mapping problems as [`Error`] instead of panicking — the entry
    /// point for servers that must degrade rather than abort.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidTrainingSet`] if the dataset is empty, mismatched
    /// or single-class; [`Error::TrueNorth`] if any layer exceeds the
    /// crossbar limits.
    pub fn try_train(
        descriptors: &[Vec<f32>],
        labels: &[bool],
        config: EednClassifierConfig,
    ) -> Result<Self> {
        Self::try_train_with(descriptors, labels, config, None, |_| ControlFlow::Continue(()))
    }

    /// [`try_train`](EednClassifier::try_train) with per-epoch checkpoint
    /// emission and resumption.
    ///
    /// After every completed epoch, `on_checkpoint` receives an
    /// [`EednCheckpoint`] capturing the full learned state; returning
    /// [`ControlFlow::Break`] stops training early (the chaos tests use
    /// this to simulate a process kill) and yields the partially trained
    /// classifier. Passing a checkpoint as `resume_from` continues from
    /// its epoch; because each epoch's batch order is derived from
    /// `config.seed` and the epoch index alone, a resumed run is
    /// **bit-identical** to an uninterrupted run with the same seed.
    ///
    /// # Errors
    ///
    /// Everything [`try_train`](EednClassifier::try_train) reports, plus
    /// [`Error::InvalidConfig`] if `resume_from` disagrees with `config`
    /// or the training data, or if its state fails validation.
    pub fn try_train_with(
        descriptors: &[Vec<f32>],
        labels: &[bool],
        config: EednClassifierConfig,
        resume_from: Option<&EednCheckpoint>,
        mut on_checkpoint: impl FnMut(&EednCheckpoint) -> ControlFlow<()>,
    ) -> Result<Self> {
        if descriptors.is_empty() {
            return Err(Error::InvalidTrainingSet { reason: "no training descriptors".into() });
        }
        if descriptors.len() != labels.len() {
            return Err(Error::InvalidTrainingSet {
                reason: format!(
                    "descriptor/label mismatch: {} descriptors, {} labels",
                    descriptors.len(),
                    labels.len()
                ),
            });
        }
        let n_pos = labels.iter().filter(|&&l| l).count();
        if n_pos == 0 || n_pos == labels.len() {
            return Err(Error::InvalidTrainingSet { reason: "training needs both classes".into() });
        }
        let in_dim = descriptors[0].len();

        let (mut net, scaler, core_count, start_epoch) = match resume_from {
            Some(ckpt) => {
                if ckpt.config != config {
                    return Err(Error::InvalidConfig {
                        what: "resume_from".into(),
                        reason: "checkpoint was written by a different training \
                                 configuration"
                            .into(),
                    });
                }
                if ckpt.state.in_dim != in_dim {
                    return Err(Error::InvalidConfig {
                        what: "resume_from".into(),
                        reason: format!(
                            "checkpoint expects {}-dimensional descriptors, got {in_dim}",
                            ckpt.state.in_dim
                        ),
                    });
                }
                let restored = Self::from_state(&ckpt.state)?;
                (restored.net, restored.scaler, restored.core_count, ckpt.epoch)
            }
            None => {
                let scaler = FeatureScaler::fit(descriptors);

                let g1 = pick_groups(in_dim, config.hidden1);
                let g2 = pick_groups(config.hidden1, config.hidden2);
                let g3 = pick_groups(config.hidden2, 2).min(2);
                let core_count = g1 + g2 + g3;
                // The first layer must really fit (an unsatisfiable shape panics
                // in GroupedLinear::new; checking here turns it into a
                // recoverable error before any training time is spent). Later
                // layers keep the historical software-side leniency: their
                // mapping is only enforced when the net is placed on hardware.
                check_crossbar_fit(in_dim, config.hidden1, g1)?;

                let net = Sequential::new()
                    .push(
                        GroupedLinear::new(in_dim, config.hidden1, g1, true, config.seed ^ 1)
                            .with_bias_init(0.5),
                    )
                    .push(HardSigmoid::new())
                    .push(Permute::random(config.hidden1, config.seed ^ 2))
                    .push(
                        GroupedLinear::new(
                            config.hidden1,
                            config.hidden2,
                            g2,
                            true,
                            config.seed ^ 3,
                        )
                        .with_bias_init(0.5),
                    )
                    .push(HardSigmoid::new())
                    .push(Permute::random(config.hidden2, config.seed ^ 4))
                    .push(GroupedLinear::new(config.hidden2, 2, g3, true, config.seed ^ 5));
                (net, scaler, core_count, 0)
            }
        };

        let scaled = scaler.apply_all(descriptors);
        let ds = Dataset::from_parts(scaled, labels.iter().map(|&l| l as usize).collect());
        for epoch in start_epoch..config.epochs {
            let epoch_span = pcnn_trace::span(pcnn_trace::stages::COTRAIN_EPOCH);
            let mut loss_sum = 0.0f32;
            let mut batches = 0usize;
            let mut samples = 0usize;
            for (x, y) in ds.batches(config.batch, config.seed ^ (0x100 + epoch as u64)) {
                samples += y.len();
                loss_sum += net.train_step_classify(&x, &y, config.lr, 0.9);
                batches += 1;
            }
            if epoch_span.is_recording() {
                use pcnn_trace::Counter;
                epoch_span.add(Counter::Epochs, 1);
                epoch_span.add(Counter::Batches, batches as u64);
                epoch_span.add(Counter::Samples, samples as u64);
            }
            drop(epoch_span);
            let checkpoint = EednCheckpoint {
                epoch: epoch + 1,
                config,
                rng_state: config.seed,
                epoch_loss: loss_sum / batches.max(1) as f32,
                state: state_of(&net, &scaler, in_dim, core_count),
            };
            if on_checkpoint(&checkpoint) == ControlFlow::Break(()) {
                return Ok(EednClassifier { net, scaler, in_dim, core_count });
            }
        }

        Ok(EednClassifier { net, scaler, in_dim, core_count })
    }

    /// Snapshots the full learned state for persistence.
    pub fn to_state(&self) -> EednClassifierState {
        state_of(&self.net, &self.scaler, self.in_dim, self.core_count)
    }

    /// Rebuilds a classifier from a persisted state.
    ///
    /// The restored classifier scores bit-identically to the one the
    /// state was captured from, and (because the Adam moments travel
    /// with each layer) continues training bit-identically too.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if the state's layer shapes are
    /// mutually inconsistent or a permutation table is malformed —
    /// the shapes a decoded-but-tampered checkpoint would present.
    pub fn from_state(state: &EednClassifierState) -> Result<Self> {
        let shape_err =
            |reason: String| Error::InvalidConfig { what: "EednClassifierState".into(), reason };
        if state.l1.in_dim() != state.in_dim {
            return Err(shape_err(format!(
                "layer 1 expects {} inputs but in_dim is {}",
                state.l1.in_dim(),
                state.in_dim
            )));
        }
        for (name, got, want) in [
            ("perm1", state.perm1.len(), state.l1.out_dim()),
            ("perm2", state.perm2.len(), state.l2.out_dim()),
        ] {
            if got != want {
                return Err(shape_err(format!("{name} has {got} entries, expected {want}")));
            }
        }
        if state.l2.in_dim() != state.l1.out_dim() || state.l3.in_dim() != state.l2.out_dim() {
            return Err(shape_err("layer widths do not chain".into()));
        }
        if state.l3.out_dim() != 2 {
            return Err(shape_err(format!(
                "output layer has {} logits, expected 2",
                state.l3.out_dim()
            )));
        }
        for (name, perm) in [("perm1", &state.perm1), ("perm2", &state.perm2)] {
            let mut seen = vec![false; perm.len()];
            for &p in perm {
                if p >= perm.len() || seen[p] {
                    return Err(shape_err(format!("{name} is not a permutation")));
                }
                seen[p] = true;
            }
        }
        let net = Sequential::new()
            .push(state.l1.clone())
            .push(HardSigmoid::new())
            .push(Permute::from_perm(state.perm1.clone()))
            .push(state.l2.clone())
            .push(HardSigmoid::new())
            .push(Permute::from_perm(state.perm2.clone()))
            .push(state.l3.clone());
        Ok(EednClassifier {
            net,
            scaler: state.scaler.clone(),
            in_dim: state.in_dim,
            core_count: state.core_count,
        })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// TrueNorth cores the classifier occupies (one per layer group).
    pub fn core_count(&self) -> usize {
        self.core_count
    }

    /// The decision value: positive-class logit minus negative-class
    /// logit.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor dimensionality is wrong.
    pub fn score(&self, descriptor: &[f32]) -> f32 {
        assert_eq!(descriptor.len(), self.in_dim, "descriptor dimensionality mismatch");
        let x = Tensor::from_rows(&[self.scaler.apply(descriptor)]);
        let y = self.net.infer(&x);
        y.at2(0, 1) - y.at2(0, 0)
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, descriptors: &[Vec<f32>], labels: &[bool]) -> f32 {
        let correct =
            descriptors.iter().zip(labels).filter(|(d, &l)| (self.score(d) > 0.0) == l).count();
        correct as f32 / descriptors.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let label: bool = rng.random_bool(0.5);
            let c = if label { 0.7 } else { 0.3 };
            xs.push((0..dim).map(|_| c + rng.random_range(-0.2..0.2)).collect());
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn eedn_classifier_learns_blobs() {
        let (xs, ys) = blobs(300, 48, 3);
        let c = EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 48, hidden2: 24, epochs: 20, ..Default::default() },
        );
        let acc = c.accuracy(&xs, &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn group_picker_respects_crossbar() {
        assert_eq!(pick_groups(96, 240), 1);
        assert_eq!(pick_groups(2304, 240), 24); // 2304/24 = 96 <= 127
        assert!(2304 % pick_groups(2304, 240) == 0);
        assert_eq!(pick_groups(240, 120), 2); // 240/2 = 120 <= 127
    }

    #[test]
    fn core_count_is_group_sum() {
        let (xs, ys) = blobs(60, 2304, 4);
        let c = EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 240, hidden2: 120, epochs: 1, ..Default::default() },
        );
        // 24 groups + 2 groups + 1-2 for the head.
        assert!(c.core_count() >= 27 && c.core_count() <= 28, "cores {}", c.core_count());
    }

    #[test]
    fn window_classifier_unifies_backends() {
        let (xs, ys) = blobs(200, 16, 5);
        let scaler = FeatureScaler::fit(&xs);
        let model = pcnn_svm::train(&scaler.apply_all(&xs), &ys, Default::default());
        let mut svm = WindowClassifier::Svm { model, scaler };
        let mut eedn = WindowClassifier::Eedn(Box::new(EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 16, hidden2: 8, epochs: 15, ..Default::default() },
        )));
        // Both score positives above negatives on average.
        for c in [&mut svm, &mut eedn] {
            let mean_pos: f32 =
                xs.iter().zip(&ys).filter(|(_, &y)| y).map(|(x, _)| c.score(x)).sum::<f32>()
                    / ys.iter().filter(|&&y| y).count() as f32;
            let mean_neg: f32 =
                xs.iter().zip(&ys).filter(|(_, &y)| !y).map(|(x, _)| c.score(x)).sum::<f32>()
                    / ys.iter().filter(|&&y| !y).count() as f32;
            assert!(mean_pos > mean_neg, "{}: pos {mean_pos} vs neg {mean_neg}", c.label());
        }
    }

    #[test]
    fn state_roundtrip_scores_bit_identically() {
        let (xs, ys) = blobs(120, 24, 7);
        let c = EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 24, hidden2: 12, epochs: 5, ..Default::default() },
        );
        let restored = EednClassifier::from_state(&c.to_state()).unwrap();
        for x in &xs {
            assert_eq!(c.score(x).to_bits(), restored.score(x).to_bits());
        }
        assert_eq!(restored.core_count(), c.core_count());
    }

    #[test]
    fn from_state_rejects_tampered_shapes() {
        let (xs, ys) = blobs(60, 16, 8);
        let c = EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 16, hidden2: 8, epochs: 1, ..Default::default() },
        );
        let mut bad = c.to_state();
        bad.perm1[0] = bad.perm1[1]; // duplicate entry: not a permutation
        assert!(matches!(
            EednClassifier::from_state(&bad).unwrap_err(),
            Error::InvalidConfig { .. }
        ));
        let mut short = c.to_state();
        short.perm2.pop();
        assert!(EednClassifier::from_state(&short).is_err());
    }

    #[test]
    fn interrupted_then_resumed_training_is_bit_identical() {
        use std::ops::ControlFlow;
        let (xs, ys) = blobs(150, 24, 9);
        let config =
            EednClassifierConfig { hidden1: 24, hidden2: 12, epochs: 6, ..Default::default() };

        let full = EednClassifier::try_train(&xs, &ys, config).unwrap();

        // "Crash" after epoch 3, keeping only the emitted checkpoint.
        let mut saved = None;
        let _partial = EednClassifier::try_train_with(&xs, &ys, config, None, |ckpt| {
            if ckpt.epoch == 3 {
                saved = Some(ckpt.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        let ckpt = saved.expect("checkpoint at epoch 3");

        let resumed = EednClassifier::try_train_with(&xs, &ys, config, Some(&ckpt), |_| {
            ControlFlow::Continue(())
        })
        .unwrap();

        for x in &xs {
            assert_eq!(full.score(x).to_bits(), resumed.score(x).to_bits());
        }
        // Stronger: the serialized states agree exactly (weights + Adam moments).
        let a = serde_json::to_string(&full.to_state()).unwrap();
        let b = serde_json::to_string(&resumed.to_state()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        use std::ops::ControlFlow;
        let (xs, ys) = blobs(80, 16, 10);
        let config =
            EednClassifierConfig { hidden1: 16, hidden2: 8, epochs: 3, ..Default::default() };
        let mut saved = None;
        EednClassifier::try_train_with(&xs, &ys, config, None, |ckpt| {
            saved = Some(ckpt.clone());
            ControlFlow::Break(())
        })
        .unwrap();
        let ckpt = saved.unwrap();
        let other = EednClassifierConfig { seed: config.seed + 1, ..config };
        let err = EednClassifier::try_train_with(&xs, &ys, other, Some(&ckpt), |_| {
            ControlFlow::Continue(())
        })
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        EednClassifier::train(&[vec![0.0; 4]], &[true], Default::default());
    }

    #[test]
    fn try_train_reports_errors_instead_of_panicking() {
        let err = EednClassifier::try_train(&[], &[], Default::default()).unwrap_err();
        assert!(matches!(err, Error::InvalidTrainingSet { .. }), "{err}");
        let err =
            EednClassifier::try_train(&[vec![0.0; 4]], &[true], Default::default()).unwrap_err();
        assert!(err.to_string().contains("both classes"));
        let two = vec![vec![0.0; 4], vec![1.0; 4]];
        let err = EednClassifier::try_train(&two, &[true], Default::default()).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn try_train_rejects_unmappable_layers() {
        // A tiny input with a huge hidden layer maps to a single group
        // whose fan-out exceeds the 256 neurons of one crossbar.
        let (xs, ys) = blobs(40, 4, 6);
        let err = EednClassifier::try_train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 2048, hidden2: 2, epochs: 1, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, Error::TrueNorth(_)), "{err}");
        assert!(err.to_string().contains("crossbar"), "{err}");
    }
}
