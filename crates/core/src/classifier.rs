//! Window classifiers: linear SVM and the Eedn-constrained network.

use crate::error::{Error, Result};
use pcnn_eedn::activation::HardSigmoid;
use pcnn_eedn::fc::GroupedLinear;
use pcnn_eedn::mapping::check_crossbar_fit;
use pcnn_eedn::permute::Permute;
use pcnn_eedn::tensor::Tensor;
use pcnn_eedn::{Dataset, Sequential};
use pcnn_svm::{FeatureScaler, LinearSvm};
use serde::{Deserialize, Serialize};

/// A trained classifier scoring window descriptors (higher = more
/// person-like).
pub enum WindowClassifier {
    /// Linear SVM (with its fitted feature scaler).
    Svm {
        /// The trained model.
        model: LinearSvm,
        /// The feature standardizer fitted on training descriptors.
        scaler: FeatureScaler,
    },
    /// Eedn-constrained network.
    Eedn(EednClassifier),
}

impl std::fmt::Debug for WindowClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowClassifier::Svm { model, .. } => {
                f.debug_struct("WindowClassifier::Svm").field("dim", &model.dim()).finish()
            }
            WindowClassifier::Eedn(c) => f
                .debug_struct("WindowClassifier::Eedn")
                .field("dim", &c.in_dim)
                .field("cores", &c.core_count)
                .finish(),
        }
    }
}

impl WindowClassifier {
    /// Scores one descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor dimensionality mismatches the training
    /// dimensionality.
    pub fn score(&self, descriptor: &[f32]) -> f32 {
        match self {
            WindowClassifier::Svm { model, scaler } => model.score(&scaler.apply(descriptor)),
            WindowClassifier::Eedn(c) => c.score(descriptor),
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            WindowClassifier::Svm { .. } => "SVM",
            WindowClassifier::Eedn(_) => "Eedn",
        }
    }
}

/// Configuration of the Eedn window classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EednClassifierConfig {
    /// First hidden width (grouped to fit crossbars).
    pub hidden1: usize,
    /// Second hidden width.
    pub hidden2: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate (Adam).
    pub lr: f32,
    /// Seed for init and batching.
    pub seed: u64,
}

impl Default for EednClassifierConfig {
    fn default() -> Self {
        EednClassifierConfig {
            hidden1: 240,
            hidden2: 120,
            epochs: 30,
            batch: 32,
            lr: 0.002,
            seed: 0xC1A5,
        }
    }
}

/// The Eedn-constrained window classifier: three grouped trinary layers
/// with hard-sigmoid activations, trained with softmax cross-entropy.
///
/// Group counts are chosen so every layer fits the 256×256 crossbar with
/// the pos/neg axon convention (fan-in ≤ 127 per group); the resulting
/// core count is the resource metric of §5.1.
pub struct EednClassifier {
    net: Sequential,
    scaler: FeatureScaler,
    in_dim: usize,
    core_count: usize,
}

impl std::fmt::Debug for EednClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EednClassifier")
            .field("in_dim", &self.in_dim)
            .field("cores", &self.core_count)
            .finish()
    }
}

/// Picks the smallest group count that divides both dims and keeps the
/// per-group fan-in within the crossbar (127 with the ± convention).
fn pick_groups(in_dim: usize, out_dim: usize) -> usize {
    for g in 1..=in_dim {
        if in_dim.is_multiple_of(g) && out_dim.is_multiple_of(g) && in_dim / g <= 127 {
            return g;
        }
    }
    in_dim
}

impl EednClassifier {
    /// Trains the classifier on labelled descriptors.
    ///
    /// Thin panicking wrapper over
    /// [`try_train`](EednClassifier::try_train), kept for tests and
    /// scripts where aborting is acceptable.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or single-class, or if a layer
    /// cannot be mapped onto TrueNorth crossbars.
    pub fn train(descriptors: &[Vec<f32>], labels: &[bool], config: EednClassifierConfig) -> Self {
        Self::try_train(descriptors, labels, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains the classifier on labelled descriptors, reporting dataset
    /// and mapping problems as [`Error`] instead of panicking — the entry
    /// point for servers that must degrade rather than abort.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidTrainingSet`] if the dataset is empty, mismatched
    /// or single-class; [`Error::TrueNorth`] if any layer exceeds the
    /// crossbar limits.
    pub fn try_train(
        descriptors: &[Vec<f32>],
        labels: &[bool],
        config: EednClassifierConfig,
    ) -> Result<Self> {
        if descriptors.is_empty() {
            return Err(Error::InvalidTrainingSet { reason: "no training descriptors".into() });
        }
        if descriptors.len() != labels.len() {
            return Err(Error::InvalidTrainingSet {
                reason: format!(
                    "descriptor/label mismatch: {} descriptors, {} labels",
                    descriptors.len(),
                    labels.len()
                ),
            });
        }
        let n_pos = labels.iter().filter(|&&l| l).count();
        if n_pos == 0 || n_pos == labels.len() {
            return Err(Error::InvalidTrainingSet { reason: "training needs both classes".into() });
        }
        let in_dim = descriptors[0].len();

        let scaler = FeatureScaler::fit(descriptors);
        let scaled = scaler.apply_all(descriptors);

        let g1 = pick_groups(in_dim, config.hidden1);
        let g2 = pick_groups(config.hidden1, config.hidden2);
        let g3 = pick_groups(config.hidden2, 2).min(2);
        let core_count = g1 + g2 + g3;
        // The first layer must really fit (an unsatisfiable shape panics
        // in GroupedLinear::new; checking here turns it into a
        // recoverable error before any training time is spent). Later
        // layers keep the historical software-side leniency: their
        // mapping is only enforced when the net is placed on hardware.
        check_crossbar_fit(in_dim, config.hidden1, g1)?;

        let mut net = Sequential::new()
            .push(
                GroupedLinear::new(in_dim, config.hidden1, g1, true, config.seed ^ 1)
                    .with_bias_init(0.5),
            )
            .push(HardSigmoid::new())
            .push(Permute::random(config.hidden1, config.seed ^ 2))
            .push(
                GroupedLinear::new(config.hidden1, config.hidden2, g2, true, config.seed ^ 3)
                    .with_bias_init(0.5),
            )
            .push(HardSigmoid::new())
            .push(Permute::random(config.hidden2, config.seed ^ 4))
            .push(GroupedLinear::new(config.hidden2, 2, g3, true, config.seed ^ 5));

        let ds = Dataset::from_parts(scaled, labels.iter().map(|&l| l as usize).collect());
        for epoch in 0..config.epochs {
            for (x, y) in ds.batches(config.batch, config.seed ^ (0x100 + epoch as u64)) {
                net.train_step_classify(&x, &y, config.lr, 0.9);
            }
        }

        Ok(EednClassifier { net, scaler, in_dim, core_count })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// TrueNorth cores the classifier occupies (one per layer group).
    pub fn core_count(&self) -> usize {
        self.core_count
    }

    /// The decision value: positive-class logit minus negative-class
    /// logit.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor dimensionality is wrong.
    pub fn score(&self, descriptor: &[f32]) -> f32 {
        assert_eq!(descriptor.len(), self.in_dim, "descriptor dimensionality mismatch");
        let x = Tensor::from_rows(&[self.scaler.apply(descriptor)]);
        let y = self.net.infer(&x);
        y.at2(0, 1) - y.at2(0, 0)
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, descriptors: &[Vec<f32>], labels: &[bool]) -> f32 {
        let correct =
            descriptors.iter().zip(labels).filter(|(d, &l)| (self.score(d) > 0.0) == l).count();
        correct as f32 / descriptors.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let label: bool = rng.random_bool(0.5);
            let c = if label { 0.7 } else { 0.3 };
            xs.push((0..dim).map(|_| c + rng.random_range(-0.2..0.2)).collect());
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn eedn_classifier_learns_blobs() {
        let (xs, ys) = blobs(300, 48, 3);
        let c = EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 48, hidden2: 24, epochs: 20, ..Default::default() },
        );
        let acc = c.accuracy(&xs, &ys);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn group_picker_respects_crossbar() {
        assert_eq!(pick_groups(96, 240), 1);
        assert_eq!(pick_groups(2304, 240), 24); // 2304/24 = 96 <= 127
        assert!(2304 % pick_groups(2304, 240) == 0);
        assert_eq!(pick_groups(240, 120), 2); // 240/2 = 120 <= 127
    }

    #[test]
    fn core_count_is_group_sum() {
        let (xs, ys) = blobs(60, 2304, 4);
        let c = EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 240, hidden2: 120, epochs: 1, ..Default::default() },
        );
        // 24 groups + 2 groups + 1-2 for the head.
        assert!(c.core_count() >= 27 && c.core_count() <= 28, "cores {}", c.core_count());
    }

    #[test]
    fn window_classifier_unifies_backends() {
        let (xs, ys) = blobs(200, 16, 5);
        let scaler = FeatureScaler::fit(&xs);
        let model = pcnn_svm::train(&scaler.apply_all(&xs), &ys, Default::default());
        let mut svm = WindowClassifier::Svm { model, scaler };
        let mut eedn = WindowClassifier::Eedn(EednClassifier::train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 16, hidden2: 8, epochs: 15, ..Default::default() },
        ));
        // Both score positives above negatives on average.
        for c in [&mut svm, &mut eedn] {
            let mean_pos: f32 =
                xs.iter().zip(&ys).filter(|(_, &y)| y).map(|(x, _)| c.score(x)).sum::<f32>()
                    / ys.iter().filter(|&&y| y).count() as f32;
            let mean_neg: f32 =
                xs.iter().zip(&ys).filter(|(_, &y)| !y).map(|(x, _)| c.score(x)).sum::<f32>()
                    / ys.iter().filter(|&&y| !y).count() as f32;
            assert!(mean_pos > mean_neg, "{}: pos {mean_pos} vs neg {mean_neg}", c.label());
        }
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        EednClassifier::train(&[vec![0.0; 4]], &[true], Default::default());
    }

    #[test]
    fn try_train_reports_errors_instead_of_panicking() {
        let err = EednClassifier::try_train(&[], &[], Default::default()).unwrap_err();
        assert!(matches!(err, Error::InvalidTrainingSet { .. }), "{err}");
        let err =
            EednClassifier::try_train(&[vec![0.0; 4]], &[true], Default::default()).unwrap_err();
        assert!(err.to_string().contains("both classes"));
        let two = vec![vec![0.0; 4], vec![1.0; 4]];
        let err = EednClassifier::try_train(&two, &[true], Default::default()).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn try_train_rejects_unmappable_layers() {
        // A tiny input with a huge hidden layer maps to a single group
        // whose fan-out exceeds the 256 neurons of one crossbar.
        let (xs, ys) = blobs(40, 4, 6);
        let err = EednClassifier::try_train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 2048, hidden2: 2, epochs: 1, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, Error::TrueNorth(_)), "{err}");
        assert!(err.to_string().contains("crossbar"), "{err}");
    }
}
