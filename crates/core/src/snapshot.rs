//! Serializable snapshots of trained detectors.
//!
//! A [`TrainedDetector`] pairs a feature extractor with a trained
//! classifier; neither is directly serializable (the extractor may wrap
//! a simulated hardware module, the Eedn classifier holds trait
//! objects). [`DetectorSnapshot`] is the persistence form: plain data
//! that round-trips through serde and rebuilds a behaviorally identical
//! detector via [`TrainedDetector::from_snapshot`].
//!
//! The contract, pinned by tests in `pcnn-store`: a detector restored
//! from its own snapshot produces **bit-identical** detections on every
//! image (for deterministic extractor configurations; Parrot stochastic
//! coding resumes the exact RNG position, so a freshly restored
//! detector continues the noise stream where the snapshot left it).

use crate::classifier::{EednClassifier, EednClassifierState, WindowClassifier};
use crate::error::Result;
use crate::extractor::{Extractor, ExtractorSpec};
use crate::pipeline::TrainedDetector;
use pcnn_svm::{FeatureScaler, LinearSvm};
use serde::{Deserialize, Serialize};

/// The persistence form of a [`WindowClassifier`].
// The Eedn state dwarfs the SVM variant; snapshots exist transiently
// during save/load, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClassifierSnapshot {
    /// A linear SVM with its fitted scaler.
    Svm {
        /// The trained model.
        model: LinearSvm,
        /// The feature standardizer fitted on training descriptors.
        scaler: FeatureScaler,
    },
    /// An Eedn-constrained network, as its full parameter state.
    Eedn(EednClassifierState),
}

/// The persistence form of a [`TrainedDetector`]: extractor
/// configuration plus classifier parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    /// How to rebuild the feature extractor.
    pub extractor: ExtractorSpec,
    /// The trained classifier parameters.
    pub classifier: ClassifierSnapshot,
}

impl TrainedDetector {
    /// Captures this detector as a serializable snapshot.
    pub fn to_snapshot(&self) -> DetectorSnapshot {
        let classifier = match &self.classifier {
            WindowClassifier::Svm { model, scaler } => {
                ClassifierSnapshot::Svm { model: model.clone(), scaler: scaler.clone() }
            }
            WindowClassifier::Eedn(c) => ClassifierSnapshot::Eedn(c.to_state()),
        };
        DetectorSnapshot { extractor: self.extractor.spec(), classifier }
    }

    /// Rebuilds a detector from a snapshot.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`](crate::Error::InvalidConfig) when the
    /// snapshot decoded but describes an internally inconsistent
    /// extractor or classifier (tampered or corrupted state).
    pub fn from_snapshot(snapshot: &DetectorSnapshot) -> Result<Self> {
        let extractor = Extractor::from_spec(snapshot.extractor.clone())?;
        let classifier = match &snapshot.classifier {
            ClassifierSnapshot::Svm { model, scaler } => {
                WindowClassifier::Svm { model: model.clone(), scaler: scaler.clone() }
            }
            ClassifierSnapshot::Eedn(state) => {
                WindowClassifier::Eedn(Box::new(EednClassifier::from_state(state)?))
            }
        };
        Ok(TrainedDetector { extractor, classifier })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::EednClassifierConfig;
    use pcnn_hog::BlockNorm;
    use pcnn_svm::TrainConfig;
    use pcnn_vision::GrayImage;

    fn svm_detector(extractor: Extractor) -> TrainedDetector {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let crop = GrayImage::from_fn(64, 128, |x, y| {
                (((x + y * 3 + i * 7) % 13) as f32 / 13.0).clamp(0.0, 1.0)
            });
            xs.push(extractor.crop_descriptor(&crop));
            ys.push(i % 2 == 0);
        }
        let scaler = FeatureScaler::fit(&xs);
        let model = pcnn_svm::train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
        TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
    }

    fn scores_match(a: &TrainedDetector, b: &TrainedDetector) -> bool {
        (0..6).all(|i| {
            let crop = GrayImage::from_fn(64, 128, |x, y| ((x * y + i * 31) % 17) as f32 / 17.0);
            let da = a.extractor.crop_descriptor(&crop);
            let db = b.extractor.crop_descriptor(&crop);
            da == db && a.classifier.score(&da).to_bits() == b.classifier.score(&db).to_bits()
        })
    }

    #[test]
    fn svm_detector_roundtrips_bit_identically() {
        let det = svm_detector(Extractor::napprox_fp(BlockNorm::L2));
        let snap = det.to_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let decoded: DetectorSnapshot = serde_json::from_str(&json).unwrap();
        let restored = TrainedDetector::from_snapshot(&decoded).unwrap();
        assert!(scores_match(&det, &restored));
    }

    #[test]
    fn every_deterministic_extractor_spec_roundtrips() {
        let extractors = [
            Extractor::fpga(),
            Extractor::traditional(),
            Extractor::traditional_signed_18(),
            Extractor::napprox_fp(BlockNorm::None),
            Extractor::napprox_quantized(64, BlockNorm::None),
            Extractor::raw(),
        ];
        let patch = GrayImage::from_fn(10, 10, |x, y| ((x * 5 + y * 3) % 11) as f32 / 11.0);
        for ex in extractors {
            let kind = ex.kind();
            let restored = Extractor::from_spec(ex.spec()).unwrap();
            assert_eq!(restored.kind(), kind);
            assert_eq!(restored.len(), ex.len());
            assert_eq!(restored.bins(), ex.bins());
            assert_eq!(ex.cell_histogram(&patch), restored.cell_histogram(&patch), "{kind}");
        }
    }

    #[test]
    fn hardware_spec_rebuilds_without_fault_plan() {
        let hw = Extractor::napprox_hardware(32, BlockNorm::None);
        hw.set_fault_plan(&pcnn_truenorth::FaultPlan::seeded(5).with_dead_core(0)).unwrap();
        let restored = Extractor::from_spec(hw.spec()).unwrap();
        assert!(restored.fault_stats().is_none());
        let patch = GrayImage::from_fn(10, 10, |x, y| ((x + y) % 7) as f32 / 7.0);
        // The restored module matches a *clean* one, not the faulted one.
        let clean = Extractor::napprox_hardware(32, BlockNorm::None);
        assert_eq!(restored.cell_histogram(&patch), clean.cell_histogram(&patch));
    }

    #[test]
    fn eedn_detector_roundtrips_bit_identically() {
        let ex = Extractor::napprox_quantized(64, BlockNorm::None);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let crop =
                GrayImage::from_fn(64, 128, |x, y| (((x * 3 + y + i * 11) % 19) as f32) / 19.0);
            xs.push(ex.crop_descriptor(&crop));
            ys.push(i % 2 == 1);
        }
        let eedn = EednClassifier::try_train(
            &xs,
            &ys,
            EednClassifierConfig { hidden1: 24, hidden2: 12, epochs: 2, ..Default::default() },
        )
        .unwrap();
        let det =
            TrainedDetector { extractor: ex, classifier: WindowClassifier::Eedn(Box::new(eedn)) };
        let snap = det.to_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let decoded: DetectorSnapshot = serde_json::from_str(&json).unwrap();
        let restored = TrainedDetector::from_snapshot(&decoded).unwrap();
        assert!(scores_match(&det, &restored));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let err = Extractor::from_spec(ExtractorSpec::NApproxHardware {
            spikes: 0,
            norm: BlockNorm::None,
        })
        .unwrap_err();
        assert!(matches!(err, crate::Error::InvalidConfig { .. }), "{err}");
    }
}
