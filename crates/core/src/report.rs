//! Plain-text rendering of experiment outputs.
//!
//! The bench harness prints the same rows and series the paper reports;
//! these helpers keep that formatting in one place.

use crate::power::PowerTable;
use pcnn_vision::DetectionCurve;

/// Renders a miss-rate/FPPI curve as the series of sampled points the
/// paper's figures plot: miss rate at log-spaced FPPI values.
pub fn render_curve(label: &str, curve: &DetectionCurve) -> String {
    let mut out =
        format!("{label}  (images={}, ground truth={})\n", curve.images, curve.total_ground_truth);
    out.push_str("  fppi      miss-rate\n");
    for i in 0..9 {
        let fppi = 10f64.powf(-2.0 + f64::from(i) * 0.5 / 2.0);
        out.push_str(&format!("  {fppi:8.4}  {:8.4}\n", curve.miss_rate_at(fppi)));
    }
    out.push_str(&format!("  log-average miss rate: {:.4}\n", curve.log_average_miss_rate()));
    out
}

/// Renders several curves side by side at shared FPPI samples — the
/// figure-style comparison ("who wins, where").
pub fn render_curves(curves: &[(&str, &DetectionCurve)]) -> String {
    let mut out = String::from("  fppi    ");
    for (label, _) in curves {
        out.push_str(&format!("{label:>16}"));
    }
    out.push('\n');
    for i in 0..9 {
        let fppi = 10f64.powf(-2.0 + f64::from(i) * 0.25);
        out.push_str(&format!("  {fppi:7.4} "));
        for (_, c) in curves {
            out.push_str(&format!("{:16.4}", c.miss_rate_at(fppi)));
        }
        out.push('\n');
    }
    out.push_str("  lamr    ");
    for (_, c) in curves {
        out.push_str(&format!("{:16.4}", c.log_average_miss_rate()));
    }
    out.push('\n');
    out
}

/// Renders the reproduced Table 2.
pub fn render_power_table(table: &PowerTable) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Workload: full-HD @ 26 fps = {:.0} cells/s\n\n",
        table.required_cells_per_s
    ));
    out.push_str(&format!(
        "{:<22} {:<18} {:>9} {:>10} {:>8} {:>12}\n",
        "Approach", "Signal resolution", "modules", "cores", "chips", "power"
    ));
    out.push_str(&format!(
        "{:<22} {:<18} {:>9} {:>10} {:>8} {:>9.2} W (logic {:.2} W)\n",
        "High-precision FPGA", "16-bit", "-", "-", "-", table.fpga.system_w, table.fpga.logic_w,
    ));
    for row in &table.rows {
        let power = if row.power_w < 1.0 {
            format!("{:.0} mW", row.power_w * 1000.0)
        } else {
            format!("{:.2} W", row.power_w)
        };
        out.push_str(&format!(
            "{:<22} {:<18} {:>9} {:>10} {:>8.1} {:>12}\n",
            row.approach, row.signal, row.modules, row.cores, row.chips, power
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_vision::{BoundingBox, Detection, Evaluator};

    fn curve() -> DetectionCurve {
        let mut ev = Evaluator::new();
        let gt = vec![BoundingBox::new(0.0, 0.0, 40.0, 80.0)];
        ev.add_image(&[Detection { bbox: gt[0], score: 0.9 }], &gt);
        ev.curve()
    }

    #[test]
    fn curve_rendering_contains_lamr() {
        let c = curve();
        let s = render_curve("test", &c);
        assert!(s.contains("log-average miss rate"));
        assert!(s.contains("test"));
    }

    #[test]
    fn multi_curve_alignment() {
        let c = curve();
        let s = render_curves(&[("a", &c), ("b", &c)]);
        assert!(s.lines().count() >= 11);
        assert!(s.contains("lamr"));
    }

    #[test]
    fn power_table_mentions_all_rows() {
        let t = PowerTable::paper();
        let s = render_power_table(&t);
        assert!(s.contains("FPGA"));
        assert!(s.contains("NApprox"));
        assert!(s.contains("Parrot"));
        assert!(s.contains("mW"), "sub-watt rows render in mW:\n{s}");
    }
}
