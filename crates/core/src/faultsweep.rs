//! Accuracy under injected hardware faults: miss rate versus fault rate
//! per extraction paradigm.
//!
//! The sweep trains one SVM on software NApprox features, then
//! classifies held-out synthetic crops through three paradigms at each
//! fault rate:
//!
//! * **NApprox-HW** — the corelet on the simulated TrueNorth fabric
//!   with a [`FaultPlan`] attached: `rate` of fabric spikes dropped and
//!   `round(rate × module cores)` cores dead, spread across the module;
//! * **NApprox** — the same arithmetic in software, immune to fabric
//!   faults (the fallback chain's first rung);
//! * **Traditional-HoG** — the float reference, the chain's floor.
//!
//! The software rows are flat by construction; the hardware row shows
//! how much accuracy a faulted module actually loses, which is what the
//! serving runtime's degradation policy trades against.

use crate::classifier::WindowClassifier;
use crate::extractor::Extractor;
use pcnn_hog::BlockNorm;
use pcnn_svm::{train, FeatureScaler, TrainConfig};
use pcnn_truenorth::FaultPlan;
use pcnn_vision::{GrayImage, SynthConfig, SynthDataset};
use serde::{Deserialize, Serialize};

/// The NApprox module's core count on this workspace's simulator.
const MODULE_CORES: u32 = 30;

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepConfig {
    /// Fault rates to sweep (0 = healthy fabric).
    pub rates: Vec<f32>,
    /// Training crops per class for the shared SVM.
    pub train_per_class: usize,
    /// Held-out evaluation crops per class, per rate.
    pub eval_per_class: usize,
    /// Input coding window for the NApprox paradigms.
    pub spikes: u32,
    /// Seed for the fault plans (and the synthetic dataset).
    pub seed: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        FaultSweepConfig {
            rates: vec![0.0, 0.05, 0.1, 0.2, 0.4],
            train_per_class: 12,
            eval_per_class: 12,
            spikes: 64,
            seed: 0xFA17,
        }
    }
}

impl FaultSweepConfig {
    /// A CI-sized configuration: two rates, a handful of crops.
    pub fn smoke() -> Self {
        FaultSweepConfig {
            rates: vec![0.0, 0.3],
            train_per_class: 6,
            eval_per_class: 4,
            ..Default::default()
        }
    }
}

/// One (paradigm, fault rate) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepPoint {
    /// Paradigm label ([`ExtractorKind::label`](crate::ExtractorKind::label)).
    pub paradigm: String,
    /// The swept fault rate.
    pub fault_rate: f32,
    /// Cores killed in the hardware module at this rate (0 for software
    /// paradigms).
    pub dead_cores: u32,
    /// Fraction of positive crops misclassified.
    pub miss_rate: f64,
    /// Fraction of negative crops misclassified.
    pub false_positive_rate: f64,
    /// Fault events the simulator recorded while evaluating (0 for
    /// software paradigms and the healthy fabric).
    pub fault_events: u64,
}

/// The complete sweep, serializable to `results/fault_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepReport {
    /// The configuration that produced the sweep.
    pub config: FaultSweepConfig,
    /// One point per (paradigm, rate).
    pub points: Vec<FaultSweepPoint>,
}

impl FaultSweepReport {
    /// The points of one paradigm, in rate order.
    pub fn paradigm(&self, label: &str) -> Vec<&FaultSweepPoint> {
        self.points.iter().filter(|p| p.paradigm == label).collect()
    }
}

/// The fault plan the sweep attaches at `rate`: that fraction of fabric
/// spikes dropped, plus `round(rate × MODULE_CORES)` dead cores spread
/// evenly across the module.
pub fn plan_for_rate(rate: f32, seed: u64) -> FaultPlan {
    let k = (rate * MODULE_CORES as f32).round() as u32;
    let dead = (0..k).map(|i| i * MODULE_CORES / k.max(1));
    FaultPlan::seeded(seed).with_drop_rate(rate).with_dead_cores(dead)
}

/// Classifies `crops` and returns the fraction scored on the wrong side
/// of zero (`expect_positive` selects which side is wrong).
fn error_rate(
    extractor: &Extractor,
    classifier: &WindowClassifier,
    crops: &[GrayImage],
    expect_positive: bool,
) -> f64 {
    let wrong = crops
        .iter()
        .filter(|crop| {
            (classifier.score(&extractor.crop_descriptor(crop)) > 0.0) != expect_positive
        })
        .count();
    wrong as f64 / crops.len().max(1) as f64
}

/// Runs the sweep. Training happens once on software features; each
/// hardware point gets a fresh module with the rate's plan attached.
pub fn run_fault_sweep(config: &FaultSweepConfig) -> FaultSweepReport {
    let ds = SynthDataset::new(SynthConfig { seed: config.seed, ..SynthConfig::default() });
    let sw = Extractor::napprox_quantized(config.spikes, BlockNorm::None);

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..config.train_per_class as u64 {
        xs.push(sw.crop_descriptor(&ds.train_positive(i)));
        ys.push(true);
        xs.push(sw.crop_descriptor(&ds.train_negative(i)));
        ys.push(false);
    }
    let scaler = FeatureScaler::fit(&xs);
    let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
    let classifier = WindowClassifier::Svm { model, scaler };

    // Traditional HoG lives in a different feature space (3780-d versus
    // NApprox's 2304-d), so its floor gets its own SVM.
    let traditional = Extractor::traditional();
    let mut txs = Vec::new();
    for i in 0..config.train_per_class as u64 {
        txs.push(traditional.crop_descriptor(&ds.train_positive(i)));
        txs.push(traditional.crop_descriptor(&ds.train_negative(i)));
    }
    let tscaler = FeatureScaler::fit(&txs);
    let tys: Vec<bool> = (0..config.train_per_class).flat_map(|_| [true, false]).collect();
    let tmodel = train(&tscaler.apply_all(&txs), &tys, TrainConfig::default());
    let tclassifier = WindowClassifier::Svm { model: tmodel, scaler: tscaler };

    // Held-out crops, disjoint from the training indices.
    let offset = config.train_per_class as u64 + 1000;
    let pos: Vec<GrayImage> =
        (0..config.eval_per_class as u64).map(|i| ds.train_positive(offset + i)).collect();
    let neg: Vec<GrayImage> =
        (0..config.eval_per_class as u64).map(|i| ds.train_negative(offset + i)).collect();

    // Software paradigms are immune to fabric faults: measure once,
    // replicate across the rate axis so every paradigm plots over the
    // same grid.
    let flat = [
        (&sw, error_rate(&sw, &classifier, &pos, true), error_rate(&sw, &classifier, &neg, false)),
        (
            &traditional,
            error_rate(&traditional, &tclassifier, &pos, true),
            error_rate(&traditional, &tclassifier, &neg, false),
        ),
    ];

    let mut points = Vec::new();
    for &rate in &config.rates {
        let hw = Extractor::napprox_hardware(config.spikes, BlockNorm::None);
        let mut dead_cores = 0;
        if rate > 0.0 {
            let plan = plan_for_rate(rate, config.seed);
            dead_cores = plan.dead_cores.len() as u32;
            hw.set_fault_plan(&plan).expect("sweep plan fits the module");
        }
        points.push(FaultSweepPoint {
            paradigm: hw.kind().label().to_owned(),
            fault_rate: rate,
            dead_cores,
            miss_rate: error_rate(&hw, &classifier, &pos, true),
            false_positive_rate: error_rate(&hw, &classifier, &neg, false),
            fault_events: hw.fault_stats().map_or(0, |s| s.total_events()),
        });
        for (extractor, miss, fp) in &flat {
            points.push(FaultSweepPoint {
                paradigm: extractor.kind().label().to_owned(),
                fault_rate: rate,
                dead_cores: 0,
                miss_rate: *miss,
                false_positive_rate: *fp,
                fault_events: 0,
            });
        }
    }
    FaultSweepReport { config: config.clone(), points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_scales_dead_cores_with_rate() {
        assert!(plan_for_rate(0.0, 1).dead_cores.is_empty());
        let half = plan_for_rate(0.5, 1);
        assert_eq!(half.dead_cores.len(), 15);
        assert_eq!(half.drop_rate, 0.5);
        // Spread across the module, not clustered at the front.
        assert!(half.dead_cores.iter().any(|&c| c >= MODULE_CORES / 2));
        let full = plan_for_rate(1.0, 1);
        assert_eq!(full.dead_cores.len(), MODULE_CORES as usize);
    }

    #[test]
    fn smoke_sweep_produces_a_point_per_paradigm_and_rate() {
        let config = FaultSweepConfig {
            rates: vec![0.0, 1.0],
            train_per_class: 4,
            eval_per_class: 2,
            ..FaultSweepConfig::smoke()
        };
        let report = run_fault_sweep(&config);
        assert_eq!(report.points.len(), 2 * 3, "3 paradigms x 2 rates");
        let hw = report.paradigm("NApprox-HW");
        assert_eq!(hw.len(), 2);
        // Healthy fabric records no fault events; the fully-dead module
        // must record suppressions and lose accuracy relative to itself.
        assert_eq!(hw[0].fault_events, 0);
        assert!(hw[1].fault_events > 0, "dead module records fault activity");
        assert_eq!(hw[1].dead_cores, MODULE_CORES);
        // Software rows are flat across rates.
        let sw = report.paradigm("NApprox");
        assert_eq!(sw[0].miss_rate, sw[1].miss_rate);
        let json = serde_json::to_string(&report).unwrap();
        let back: FaultSweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
