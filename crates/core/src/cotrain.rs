//! The three design paradigms as trainable systems.
//!
//! * **Partitioned** ([`PartitionedSystem`]) — an explicit feature
//!   extractor (NApprox or Parrot) feeding a separately trained
//!   classifier (SVM with hard-negative mining for the Fig. 4 path, Eedn
//!   for the Fig. 5 path). This is the paper's co-training recipe: the
//!   Parrot extractor is trained first on auto-generated HoG labels,
//!   frozen, and the classifier is then trained on its outputs.
//! * **Absorbed** ([`AbsorbedSystem`]) — one monolithic Eedn network from
//!   raw window pixels to the decision, granted the combined resource
//!   budget of the partitioned pair, trained on the *same* data as the
//!   partitioned classifiers. §5.1 reports this configuration "always
//!   makes blind decisions (all-positive or all-negative)";
//!   [`AbsorbedOutcome`] measures exactly that collapse.

use crate::classifier::{EednClassifier, EednClassifierConfig, WindowClassifier};
use crate::extractor::Extractor;
use crate::pipeline::Detector;
use pcnn_hog::block::assemble_descriptor;
use pcnn_svm::{mine_hard_negatives, FeatureScaler, MiningConfig, TrainConfig};
use pcnn_vision::{SynthDataset, WINDOW_HEIGHT, WINDOW_WIDTH};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::pipeline::TrainedDetector;

/// Training-set sizing shared by the paradigms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainSetConfig {
    /// Positive training crops.
    pub n_pos: u64,
    /// Seed negative training crops.
    pub n_neg: u64,
    /// Negative scenes scanned per hard-negative mining round.
    pub mining_scenes: u64,
    /// Hard-negative mining rounds (0 disables mining).
    pub mining_rounds: usize,
}

impl Default for TrainSetConfig {
    fn default() -> Self {
        TrainSetConfig { n_pos: 250, n_neg: 500, mining_scenes: 6, mining_rounds: 2 }
    }
}

/// Builder of partitioned (extractor + classifier) detectors.
#[derive(Debug)]
pub struct PartitionedSystem;

impl PartitionedSystem {
    /// Extracts labelled window descriptors from the dataset's crops.
    pub fn collect_descriptors(
        extractor: &Extractor,
        dataset: &SynthDataset,
        n_pos: u64,
        n_neg: u64,
    ) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut xs = Vec::with_capacity((n_pos + n_neg) as usize);
        let mut ys = Vec::with_capacity((n_pos + n_neg) as usize);
        for i in 0..n_pos {
            xs.push(extractor.crop_descriptor(&dataset.train_positive(i)));
            ys.push(true);
        }
        for i in 0..n_neg {
            xs.push(extractor.crop_descriptor(&dataset.train_negative(i)));
            ys.push(false);
        }
        (xs, ys)
    }

    /// All cell-aligned window descriptors of one image (no pyramid) —
    /// the candidate pool hard-negative mining scans.
    pub fn scene_window_descriptors(
        extractor: &Extractor,
        img: &pcnn_vision::GrayImage,
        cell_stride: usize,
    ) -> Vec<Vec<f32>> {
        let grid = Detector::cell_grid(extractor, img);
        let wcx = WINDOW_WIDTH / 8;
        let wcy = WINDOW_HEIGHT / 8;
        let mut out = Vec::new();
        if grid.len() < wcy || grid[0].len() < wcx {
            return out;
        }
        let norm = extractor.norm();
        let mut cy0 = 0;
        while cy0 + wcy <= grid.len() {
            let mut cx0 = 0;
            while cx0 + wcx <= grid[0].len() {
                let sub: Vec<Vec<Vec<f32>>> =
                    grid[cy0..cy0 + wcy].iter().map(|r| r[cx0..cx0 + wcx].to_vec()).collect();
                out.push(assemble_descriptor(&sub, norm));
                cx0 += cell_stride;
            }
            cy0 += cell_stride;
        }
        out
    }

    /// Trains the SVM-classified partitioned system (the Fig. 4
    /// methodology: linear SVM plus hard-negative mining over negative
    /// scenes).
    pub fn train_svm_detector(
        extractor: Extractor,
        dataset: &SynthDataset,
        config: TrainSetConfig,
    ) -> TrainedDetector {
        let (xs, ys) = Self::collect_descriptors(&extractor, dataset, config.n_pos, config.n_neg);
        let scaler = FeatureScaler::fit(&xs);
        let scaled = scaler.apply_all(&xs);
        let positives: Vec<Vec<f32>> =
            scaled.iter().zip(&ys).filter(|(_, &y)| y).map(|(x, _)| x.clone()).collect();
        let negatives: Vec<Vec<f32>> =
            scaled.iter().zip(&ys).filter(|(_, &y)| !y).map(|(x, _)| x.clone()).collect();

        // Candidate pool for mining: window descriptors from negative
        // scenes (computed once; the mining closure re-scores them).
        let mut pool: Vec<Vec<f32>> = Vec::new();
        for s in 0..config.mining_scenes {
            let scene = dataset.negative_scene(s);
            for d in Self::scene_window_descriptors(&extractor, &scene.image, 2) {
                pool.push(scaler.apply(&d));
            }
        }
        let (model, _report) = mine_hard_negatives(
            &positives,
            &negatives,
            move |_m| pool.clone(),
            MiningConfig {
                rounds: config.mining_rounds,
                train: TrainConfig::default(),
                ..MiningConfig::default()
            },
        );
        TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
    }

    /// Trains the Eedn-classified partitioned system (the Fig. 5
    /// methodology).
    pub fn train_eedn_detector(
        extractor: Extractor,
        dataset: &SynthDataset,
        config: TrainSetConfig,
        eedn: EednClassifierConfig,
    ) -> TrainedDetector {
        Self::train_eedn_detector_with(extractor, dataset, config, eedn, None, |_| {
            std::ops::ControlFlow::Continue(())
        })
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`train_eedn_detector`](PartitionedSystem::train_eedn_detector)
    /// with per-epoch checkpoint emission and resumption — the co-training
    /// entry point for long runs that must survive a process kill.
    ///
    /// The descriptor collection is deterministic in `(extractor,
    /// dataset, config)`, so a resumed run rebuilds the identical
    /// training set and continues from `resume_from` **bit-identically**
    /// to an uninterrupted run (see
    /// [`EednClassifier::try_train_with`]). `on_checkpoint` runs after
    /// every completed epoch; returning
    /// [`ControlFlow::Break`](std::ops::ControlFlow::Break) stops early
    /// with the partially trained detector.
    ///
    /// # Errors
    ///
    /// Everything [`EednClassifier::try_train_with`] reports.
    pub fn train_eedn_detector_with(
        extractor: Extractor,
        dataset: &SynthDataset,
        config: TrainSetConfig,
        eedn: EednClassifierConfig,
        resume_from: Option<&crate::classifier::EednCheckpoint>,
        on_checkpoint: impl FnMut(&crate::classifier::EednCheckpoint) -> std::ops::ControlFlow<()>,
    ) -> crate::error::Result<TrainedDetector> {
        let train_span = pcnn_trace::span(pcnn_trace::stages::COTRAIN_TRAIN);
        let collect_span = pcnn_trace::span(pcnn_trace::stages::COTRAIN_COLLECT);
        let (mut xs, mut ys) =
            Self::collect_descriptors(&extractor, dataset, config.n_pos, config.n_neg);
        // Augment with scene windows as extra negatives (a simple
        // bootstrap matching the SVM path's exposure to scene clutter).
        for s in 0..config.mining_scenes {
            let scene = dataset.negative_scene(s);
            for d in Self::scene_window_descriptors(&extractor, &scene.image, 4) {
                xs.push(d);
                ys.push(false);
            }
        }
        if collect_span.is_recording() {
            collect_span.add(pcnn_trace::Counter::Samples, xs.len() as u64);
        }
        drop(collect_span);
        if train_span.is_recording() {
            train_span.add(pcnn_trace::Counter::Samples, xs.len() as u64);
        }
        let classifier =
            EednClassifier::try_train_with(&xs, &ys, eedn, resume_from, on_checkpoint)?;
        Ok(TrainedDetector { extractor, classifier: WindowClassifier::Eedn(Box::new(classifier)) })
    }
}

/// What happened when the monolithic network was trained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbsorbedOutcome {
    /// Fraction of held-out predictions equal to the majority prediction
    /// — 1.0 means every input gets the same answer (the paper's "blind
    /// decisions").
    pub majority_fraction: f32,
    /// Held-out accuracy.
    pub validation_accuracy: f32,
    /// Whether the run collapsed to a blind classifier
    /// (`majority_fraction ≥ 0.95`).
    pub is_blind: bool,
    /// Core count of the monolithic network.
    pub cores: usize,
}

/// The Absorbed monolithic system.
#[derive(Debug)]
pub struct AbsorbedSystem;

impl AbsorbedSystem {
    /// The monolithic network configuration: raw 8192-pixel input, widths
    /// chosen so the grouped layers occupy at least as many cores as the
    /// partitioned pair's classifier while staying crossbar-legal.
    pub fn network_config() -> EednClassifierConfig {
        EednClassifierConfig {
            hidden1: 2048,
            hidden2: 256,
            epochs: 30,
            batch: 32,
            lr: 0.002,
            seed: 0xAB50,
        }
    }

    /// Trains the monolithic pixels-to-decision network on the same crop
    /// set the partitioned classifiers use, and measures collapse.
    ///
    /// Returns the detector (usable in the pipeline via the raw-pixel
    /// extractor) and the [`AbsorbedOutcome`].
    pub fn train(
        dataset: &SynthDataset,
        config: TrainSetConfig,
    ) -> (TrainedDetector, AbsorbedOutcome) {
        let extractor = Extractor::raw();
        let (mut xs, mut ys) =
            PartitionedSystem::collect_descriptors(&extractor, dataset, config.n_pos, config.n_neg);
        // The same scene-window negatives the partitioned classifiers see
        // ("the same training set", §3.3).
        for s in 0..config.mining_scenes {
            let scene = dataset.negative_scene(s);
            for d in PartitionedSystem::scene_window_descriptors(&extractor, &scene.image, 4) {
                xs.push(d);
                ys.push(false);
            }
        }
        // Hold out 20% for the collapse measurement — stratified by a
        // seeded shuffle (collect_descriptors returns positives first).
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(0xAB5D));
        let xs: Vec<Vec<f32>> = order.iter().map(|&i| xs[i].clone()).collect();
        let ys: Vec<bool> = order.iter().map(|&i| ys[i]).collect();
        let n_hold = xs.len() / 5;
        let (hold_x, train_x) = xs.split_at(n_hold);
        let (hold_y, train_y) = ys.split_at(n_hold);
        let classifier = EednClassifier::train(train_x, train_y, Self::network_config());

        let preds: Vec<bool> = hold_x.iter().map(|d| classifier.score(d) > 0.0).collect();
        let positives = preds.iter().filter(|&&p| p).count();
        let majority = positives.max(preds.len() - positives);
        let majority_fraction = majority as f32 / preds.len().max(1) as f32;
        let correct = preds.iter().zip(hold_y).filter(|(p, y)| *p == *y).count();
        let outcome = AbsorbedOutcome {
            majority_fraction,
            validation_accuracy: correct as f32 / preds.len().max(1) as f32,
            is_blind: majority_fraction >= 0.95,
            cores: classifier.core_count(),
        };
        (
            TrainedDetector { extractor, classifier: WindowClassifier::Eedn(Box::new(classifier)) },
            outcome,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_hog::BlockNorm;
    use pcnn_vision::SynthConfig;

    fn tiny_set() -> TrainSetConfig {
        TrainSetConfig { n_pos: 60, n_neg: 120, mining_scenes: 2, mining_rounds: 1 }
    }

    #[test]
    fn svm_partitioned_system_separates_training_data() {
        let ds = SynthDataset::new(SynthConfig::default());
        let det = PartitionedSystem::train_svm_detector(
            Extractor::napprox_fp(BlockNorm::L2),
            &ds,
            tiny_set(),
        );
        let mut correct = 0;
        for i in 0..30 {
            if det.classifier.score(&det.extractor.crop_descriptor(&ds.train_positive(500 + i)))
                > 0.0
            {
                correct += 1;
            }
            if det.classifier.score(&det.extractor.crop_descriptor(&ds.train_negative(500 + i)))
                <= 0.0
            {
                correct += 1;
            }
        }
        let acc = correct as f32 / 60.0;
        assert!(acc > 0.8, "held-out crop accuracy {acc}");
    }

    #[test]
    fn eedn_partitioned_system_learns() {
        let ds = SynthDataset::new(SynthConfig::default());
        let det = PartitionedSystem::train_eedn_detector(
            Extractor::napprox_fp(BlockNorm::None),
            &ds,
            tiny_set(),
            EednClassifierConfig { epochs: 15, ..Default::default() },
        );
        let mut correct = 0;
        for i in 0..20 {
            if det.classifier.score(&det.extractor.crop_descriptor(&ds.train_positive(700 + i)))
                > 0.0
            {
                correct += 1;
            }
            if det.classifier.score(&det.extractor.crop_descriptor(&ds.train_negative(700 + i)))
                <= 0.0
            {
                correct += 1;
            }
        }
        let acc = correct as f32 / 40.0;
        assert!(acc > 0.7, "held-out crop accuracy {acc}");
    }

    #[test]
    fn absorbed_trains_and_reports_collapse_metrics() {
        // §5.1 reports outright collapse on INRIA-scale data; on the
        // synthetic set the monolithic network does learn the crop task,
        // so the reproduction's claim lives in the *detection* comparison
        // (fig5 harness, EXPERIMENTS.md). The unit test checks the
        // mechanics: iso-resource sizing and sane collapse metrics.
        let ds = SynthDataset::new(SynthConfig::default());
        let (_det, outcome) = AbsorbedSystem::train(&ds, tiny_set());
        assert!(outcome.cores > 100, "monolithic cores {}", outcome.cores);
        assert!((0.5..=1.0).contains(&outcome.majority_fraction), "{outcome:?}");
        assert!((0.0..=1.0).contains(&outcome.validation_accuracy), "{outcome:?}");
        assert_eq!(outcome.is_blind, outcome.majority_fraction >= 0.95);
    }

    #[test]
    fn scene_windows_have_right_dimensionality() {
        let ds = SynthDataset::new(SynthConfig::default());
        let ex = Extractor::napprox_fp(BlockNorm::L2);
        let scene = ds.negative_scene(0);
        let descs = PartitionedSystem::scene_window_descriptors(&ex, &scene.image, 4);
        assert!(!descs.is_empty());
        assert!(descs.iter().all(|d| d.len() == ex.len()));
    }
}
