//! The feature-extraction paradigms behind one type.

use pcnn_hog::cell::CellExtractor;
use pcnn_hog::{BlockNorm, FpgaHog, HogDescriptor, NApproxHog, RawCells, TraditionalHog};
use pcnn_parrot::ParrotExtractor;
use pcnn_vision::GrayImage;

/// Which extraction paradigm an [`Extractor`] embodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractorKind {
    /// The FPGA baseline: 9-bin fixed-point HoG.
    Fpga,
    /// The Dalal–Triggs float reference.
    Traditional,
    /// NApprox in full precision (`NApprox(fp)`).
    NApproxFp,
    /// NApprox quantized to the TrueNorth spike width.
    NApproxQuantized,
    /// The trained Parrot network.
    Parrot,
    /// Raw window pixels — the identity features of the Absorbed
    /// monolithic paradigm.
    Raw,
}

impl ExtractorKind {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExtractorKind::Fpga => "FPGA-HoG",
            ExtractorKind::Traditional => "Traditional-HoG",
            ExtractorKind::NApproxFp => "NApprox(fp)",
            ExtractorKind::NApproxQuantized => "NApprox",
            ExtractorKind::Parrot => "Parrot",
            ExtractorKind::Raw => "Raw-pixels",
        }
    }
}

// Variants differ in size (the parrot carries a trained network); the
// enum is created a handful of times per experiment, so boxing would
// only add indirection.
#[allow(clippy::large_enum_variant)]
enum Inner {
    Fpga(HogDescriptor<FpgaHog>),
    Traditional(HogDescriptor<TraditionalHog>),
    NApprox(HogDescriptor<NApproxHog>),
    Parrot(HogDescriptor<ParrotExtractor>),
    Raw(HogDescriptor<RawCells>),
}

/// A window-level feature extractor of any paradigm.
pub struct Extractor {
    kind: ExtractorKind,
    inner: Inner,
}

impl std::fmt::Debug for Extractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Extractor").field("kind", &self.kind).field("len", &self.len()).finish()
    }
}

impl Extractor {
    /// The FPGA baseline with the paper's Figure 4 configuration (L2
    /// block normalization).
    pub fn fpga() -> Self {
        Extractor {
            kind: ExtractorKind::Fpga,
            inner: Inner::Fpga(HogDescriptor::new(FpgaHog::new(), BlockNorm::L2)),
        }
    }

    /// The Dalal–Triggs reference with L2 block normalization.
    pub fn traditional() -> Self {
        Extractor {
            kind: ExtractorKind::Traditional,
            inner: Inner::Traditional(HogDescriptor::new(TraditionalHog::new(), BlockNorm::L2)),
        }
    }

    /// An 18-bin signed magnitude-voted variant of the reference —
    /// isolates the count-vs-magnitude voting choice from the bin count
    /// in ablations.
    pub fn traditional_signed_18() -> Self {
        Extractor {
            kind: ExtractorKind::Traditional,
            inner: Inner::Traditional(HogDescriptor::new(
                TraditionalHog::signed_18(),
                BlockNorm::L2,
            )),
        }
    }

    /// NApprox in full precision. `norm` selects block normalization:
    /// the SVM experiments (Fig. 4) use [`BlockNorm::L2`], the
    /// neuromorphic-classifier experiments (Fig. 5) elide it.
    pub fn napprox_fp(norm: BlockNorm) -> Self {
        Extractor {
            kind: ExtractorKind::NApproxFp,
            inner: Inner::NApprox(HogDescriptor::new(NApproxHog::full_precision(), norm)),
        }
    }

    /// A custom-configured NApprox extractor (ablation studies: vote
    /// threshold, bin count, quantization).
    pub fn napprox_custom(model: NApproxHog, norm: BlockNorm) -> Self {
        Extractor {
            kind: if model.quant.is_some() {
                ExtractorKind::NApproxQuantized
            } else {
                ExtractorKind::NApproxFp
            },
            inner: Inner::NApprox(HogDescriptor::new(model, norm)),
        }
    }

    /// NApprox quantized to `spikes`-spike input coding.
    pub fn napprox_quantized(spikes: u32, norm: BlockNorm) -> Self {
        Extractor {
            kind: ExtractorKind::NApproxQuantized,
            inner: Inner::NApprox(HogDescriptor::new(NApproxHog::quantized(spikes), norm)),
        }
    }

    /// A trained Parrot extractor (Fig. 5 configuration: no block
    /// normalization, matching the TrueNorth classifier path).
    pub fn parrot(parrot: ParrotExtractor, norm: BlockNorm) -> Self {
        Extractor {
            kind: ExtractorKind::Parrot,
            inner: Inner::Parrot(HogDescriptor::new(parrot, norm)),
        }
    }

    /// Raw window pixels for the Absorbed paradigm (8192 values per
    /// window, cell-block-major).
    pub fn raw() -> Self {
        Extractor {
            kind: ExtractorKind::Raw,
            inner: Inner::Raw(HogDescriptor::new(RawCells::new(), BlockNorm::None)),
        }
    }

    /// The paradigm.
    pub fn kind(&self) -> ExtractorKind {
        self.kind
    }

    /// Descriptor dimensionality.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Fpga(d) => d.len(),
            Inner::Traditional(d) => d.len(),
            Inner::NApprox(d) => d.len(),
            Inner::Parrot(d) => d.len(),
            Inner::Raw(d) => d.len(),
        }
    }

    /// Whether descriptors are empty (never, for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of orientation bins per cell.
    pub fn bins(&self) -> usize {
        match &self.inner {
            Inner::Fpga(d) => d.extractor().bins(),
            Inner::Traditional(d) => d.extractor().bins(),
            Inner::NApprox(d) => d.extractor().bins(),
            Inner::Parrot(d) => d.extractor().bins(),
            Inner::Raw(d) => d.extractor().bins(),
        }
    }

    /// Block-normalization policy.
    pub fn norm(&self) -> BlockNorm {
        match &self.inner {
            Inner::Fpga(d) => d.norm(),
            Inner::Traditional(d) => d.norm(),
            Inner::NApprox(d) => d.norm(),
            Inner::Parrot(d) => d.norm(),
            Inner::Raw(d) => d.norm(),
        }
    }

    /// The descriptor of a window at `(x0, y0)` in `img`.
    pub fn window_descriptor(&self, img: &GrayImage, x0: usize, y0: usize) -> Vec<f32> {
        match &self.inner {
            Inner::Fpga(d) => d.window_descriptor(img, x0, y0),
            Inner::Traditional(d) => d.window_descriptor(img, x0, y0),
            Inner::NApprox(d) => d.window_descriptor(img, x0, y0),
            Inner::Parrot(d) => d.window_descriptor(img, x0, y0),
            Inner::Raw(d) => d.window_descriptor(img, x0, y0),
        }
    }

    /// The descriptor of an exactly window-sized crop.
    ///
    /// # Panics
    ///
    /// Panics if `crop` is not 64×128.
    pub fn crop_descriptor(&self, crop: &GrayImage) -> Vec<f32> {
        self.window_descriptor(crop, 0, 0)
    }

    /// The histogram of one padded 10×10 cell patch — the unit the
    /// per-level cell grid caches.
    pub fn cell_histogram(&self, patch: &GrayImage) -> Vec<f32> {
        match &self.inner {
            Inner::Fpga(d) => d.extractor().cell_histogram(patch),
            Inner::Traditional(d) => d.extractor().cell_histogram(patch),
            Inner::NApprox(d) => d.extractor().cell_histogram(patch),
            Inner::Parrot(d) => d.extractor().cell_histogram(patch),
            Inner::Raw(d) => d.extractor().cell_histogram(patch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_lengths_match_paper() {
        assert_eq!(Extractor::fpga().len(), 3780);
        assert_eq!(Extractor::traditional().len(), 3780);
        assert_eq!(Extractor::napprox_fp(BlockNorm::L2).len(), 7560);
        assert_eq!(Extractor::napprox_fp(BlockNorm::None).len(), 2304);
        assert_eq!(Extractor::napprox_quantized(64, BlockNorm::None).len(), 2304);
    }

    #[test]
    fn raw_extractor_is_identity() {
        let img = GrayImage::from_fn(64, 128, |x, y| ((x + y) % 7) as f32 / 7.0);
        let e = Extractor::raw();
        assert_eq!(e.len(), 8192);
        let d = e.crop_descriptor(&img);
        // First cell block starts with pixel (0,0).
        assert_eq!(d[0], img.get(0, 0));
        assert_eq!(d.len(), 8192);
    }

    #[test]
    fn kinds_and_labels() {
        assert_eq!(Extractor::fpga().kind().label(), "FPGA-HoG");
        assert_eq!(Extractor::napprox_fp(BlockNorm::L2).kind(), ExtractorKind::NApproxFp);
    }

    #[test]
    fn extractors_produce_different_descriptors_same_signal() {
        let img = GrayImage::from_fn(64, 128, |x, y| {
            0.5 + 0.3 * ((x as f32 * 0.3).sin() * (y as f32 * 0.2).cos())
        });
        let a = Extractor::napprox_fp(BlockNorm::None).crop_descriptor(&img);
        let b = Extractor::napprox_quantized(64, BlockNorm::None).crop_descriptor(&img);
        assert_eq!(a.len(), b.len());
        // Same algorithm, different precision: close but not identical.
        assert_ne!(a, b);
        let corr = pcnn_hog::quantize::pearson_correlation(&a, &b).unwrap();
        assert!(corr > 0.85, "corr {corr}");
    }
}
