//! The feature-extraction paradigms behind one type.

use crate::error::Error;
use pcnn_corelets::NApproxHogCorelet;
use pcnn_hog::cell::CellExtractor;
use pcnn_hog::{BlockNorm, FpgaHog, HogDescriptor, NApproxHog, RawCells, TraditionalHog};
use pcnn_parrot::{ParrotExtractor, ParrotNet};
use pcnn_truenorth::{FaultPlan, FaultStats, SystemStats};
use pcnn_vision::GrayImage;
use serde::{Deserialize, Serialize};
use std::str::FromStr;
use std::sync::Mutex;

/// Which extraction paradigm an [`Extractor`] embodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractorKind {
    /// The FPGA baseline: 9-bin fixed-point HoG.
    Fpga,
    /// The Dalal–Triggs float reference.
    Traditional,
    /// NApprox in full precision (`NApprox(fp)`).
    NApproxFp,
    /// NApprox quantized to the TrueNorth spike width.
    NApproxQuantized,
    /// NApprox running on simulated TrueNorth cores (fault-injectable).
    NApproxHardware,
    /// The trained Parrot network.
    Parrot,
    /// Raw window pixels — the identity features of the Absorbed
    /// monolithic paradigm.
    Raw,
}

impl ExtractorKind {
    /// Every paradigm, in report order — for CLI help and sweeps.
    pub const ALL: [ExtractorKind; 7] = [
        ExtractorKind::Fpga,
        ExtractorKind::Traditional,
        ExtractorKind::NApproxFp,
        ExtractorKind::NApproxQuantized,
        ExtractorKind::NApproxHardware,
        ExtractorKind::Parrot,
        ExtractorKind::Raw,
    ];

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExtractorKind::Fpga => "FPGA-HoG",
            ExtractorKind::Traditional => "Traditional-HoG",
            ExtractorKind::NApproxFp => "NApprox(fp)",
            ExtractorKind::NApproxQuantized => "NApprox",
            ExtractorKind::NApproxHardware => "NApprox-HW",
            ExtractorKind::Parrot => "Parrot",
            ExtractorKind::Raw => "Raw-pixels",
        }
    }
}

impl std::fmt::Display for ExtractorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ExtractorKind {
    type Err = Error;

    /// Parses a paradigm name, case-insensitively. Accepts every
    /// [`label`](ExtractorKind::label) (so `Display` round-trips) plus
    /// the short CLI aliases `fpga`, `traditional`, `napprox-fp`,
    /// `napprox`, `napprox-hw`, `parrot` and `raw`.
    fn from_str(s: &str) -> Result<Self, Error> {
        match s.to_ascii_lowercase().as_str() {
            "fpga" | "fpga-hog" => Ok(ExtractorKind::Fpga),
            "traditional" | "trad" | "traditional-hog" => Ok(ExtractorKind::Traditional),
            "napprox-fp" | "napprox_fp" | "napprox(fp)" => Ok(ExtractorKind::NApproxFp),
            "napprox" | "napprox-quantized" => Ok(ExtractorKind::NApproxQuantized),
            "napprox-hw" | "napprox_hw" | "hw" | "hardware" => Ok(ExtractorKind::NApproxHardware),
            "parrot" => Ok(ExtractorKind::Parrot),
            "raw" | "raw-pixels" => Ok(ExtractorKind::Raw),
            _ => Err(Error::UnknownExtractor { name: s.to_owned() }),
        }
    }
}

/// A serializable description of an [`Extractor`] configuration: the
/// constructor arguments, not the runtime object. [`Extractor::spec`]
/// captures one; [`Extractor::from_spec`] rebuilds an equivalent
/// extractor, so trained detectors can persist across processes.
// Variant sizes differ (the parrot spec carries a trained network);
// specs exist transiently during save/load, so boxing would only add
// indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExtractorSpec {
    /// The FPGA baseline ([`Extractor::fpga`]).
    Fpga,
    /// The Dalal–Triggs reference ([`Extractor::traditional`] /
    /// [`Extractor::traditional_signed_18`]).
    Traditional {
        /// Whether the 18-bin signed magnitude-voted variant was used.
        signed_18: bool,
    },
    /// NApprox computed in software ([`Extractor::napprox_custom`]);
    /// covers both the full-precision and quantized paradigms.
    NApprox {
        /// The complete model configuration, including quantization.
        model: NApproxHog,
        /// Block-normalization policy.
        norm: BlockNorm,
    },
    /// NApprox on simulated TrueNorth cores
    /// ([`Extractor::napprox_hardware`]). Only the configuration is
    /// persisted — the module is rebuilt deterministically, without any
    /// attached fault plan.
    NApproxHardware {
        /// Input coding window in spikes.
        spikes: u32,
        /// Block-normalization policy.
        norm: BlockNorm,
    },
    /// A trained Parrot network ([`Extractor::parrot`]).
    Parrot {
        /// The trained network weights.
        net: ParrotNet,
        /// Block-normalization policy.
        norm: BlockNorm,
        /// Stochastic input coding: `(window, rng_state)` captured at
        /// snapshot time, if enabled.
        stochastic: Option<(u32, [u64; 4])>,
    },
    /// Raw window pixels ([`Extractor::raw`]).
    Raw,
}

/// The NApprox cell module running on actual simulated TrueNorth cores,
/// behind the [`CellExtractor`] interface — the extractor to use when
/// hardware effects (activity-based power, injected faults) must show up
/// in detection results. A `Mutex` keeps it `Sync` for the parallel
/// serving runtime; extractions serialize on the one simulated module,
/// exactly like a single physical chip would.
struct HardwareNApprox {
    module: Mutex<NApproxHogCorelet>,
}

impl CellExtractor for HardwareNApprox {
    fn bins(&self) -> usize {
        18
    }

    fn cell_histogram(&self, patch: &GrayImage) -> Vec<f32> {
        self.module.lock().expect("hardware module lock poisoned").extract(patch)
    }

    fn name(&self) -> &str {
        "napprox-hw"
    }
}

// Variants differ in size (the parrot carries a trained network); the
// enum is created a handful of times per experiment, so boxing would
// only add indirection.
#[allow(clippy::large_enum_variant)]
enum Inner {
    Fpga(HogDescriptor<FpgaHog>),
    Traditional(HogDescriptor<TraditionalHog>),
    NApprox(HogDescriptor<NApproxHog>),
    Hardware(HogDescriptor<HardwareNApprox>),
    Parrot(HogDescriptor<ParrotExtractor>),
    Raw(HogDescriptor<RawCells>),
}

/// A window-level feature extractor of any paradigm.
pub struct Extractor {
    kind: ExtractorKind,
    inner: Inner,
}

impl std::fmt::Debug for Extractor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Extractor").field("kind", &self.kind).field("len", &self.len()).finish()
    }
}

impl Extractor {
    /// The FPGA baseline with the paper's Figure 4 configuration (L2
    /// block normalization).
    pub fn fpga() -> Self {
        Extractor {
            kind: ExtractorKind::Fpga,
            inner: Inner::Fpga(HogDescriptor::new(FpgaHog::new(), BlockNorm::L2)),
        }
    }

    /// The Dalal–Triggs reference with L2 block normalization.
    pub fn traditional() -> Self {
        Extractor {
            kind: ExtractorKind::Traditional,
            inner: Inner::Traditional(HogDescriptor::new(TraditionalHog::new(), BlockNorm::L2)),
        }
    }

    /// An 18-bin signed magnitude-voted variant of the reference —
    /// isolates the count-vs-magnitude voting choice from the bin count
    /// in ablations.
    pub fn traditional_signed_18() -> Self {
        Extractor {
            kind: ExtractorKind::Traditional,
            inner: Inner::Traditional(HogDescriptor::new(
                TraditionalHog::signed_18(),
                BlockNorm::L2,
            )),
        }
    }

    /// NApprox in full precision. `norm` selects block normalization:
    /// the SVM experiments (Fig. 4) use [`BlockNorm::L2`], the
    /// neuromorphic-classifier experiments (Fig. 5) elide it.
    pub fn napprox_fp(norm: BlockNorm) -> Self {
        Extractor {
            kind: ExtractorKind::NApproxFp,
            inner: Inner::NApprox(HogDescriptor::new(NApproxHog::full_precision(), norm)),
        }
    }

    /// A custom-configured NApprox extractor (ablation studies: vote
    /// threshold, bin count, quantization).
    pub fn napprox_custom(model: NApproxHog, norm: BlockNorm) -> Self {
        Extractor {
            kind: if model.quant.is_some() {
                ExtractorKind::NApproxQuantized
            } else {
                ExtractorKind::NApproxFp
            },
            inner: Inner::NApprox(HogDescriptor::new(model, norm)),
        }
    }

    /// NApprox quantized to `spikes`-spike input coding.
    pub fn napprox_quantized(spikes: u32, norm: BlockNorm) -> Self {
        Extractor {
            kind: ExtractorKind::NApproxQuantized,
            inner: Inner::NApprox(HogDescriptor::new(NApproxHog::quantized(spikes), norm)),
        }
    }

    /// NApprox running on the simulated TrueNorth substrate: every cell
    /// histogram is rate-coded, spiked through the 30-core module, and
    /// counted back out. Far slower than [`napprox_quantized`]
    /// (which computes the same arithmetic directly) but the only
    /// paradigm whose results respond to an attached
    /// [`FaultPlan`] — use it for yield-loss and degradation studies.
    ///
    /// [`napprox_quantized`]: Extractor::napprox_quantized
    pub fn napprox_hardware(spikes: u32, norm: BlockNorm) -> Self {
        let hw = HardwareNApprox { module: Mutex::new(NApproxHogCorelet::new(spikes)) };
        Extractor {
            kind: ExtractorKind::NApproxHardware,
            inner: Inner::Hardware(HogDescriptor::new(hw, norm)),
        }
    }

    /// A trained Parrot extractor (Fig. 5 configuration: no block
    /// normalization, matching the TrueNorth classifier path).
    pub fn parrot(parrot: ParrotExtractor, norm: BlockNorm) -> Self {
        Extractor {
            kind: ExtractorKind::Parrot,
            inner: Inner::Parrot(HogDescriptor::new(parrot, norm)),
        }
    }

    /// Raw window pixels for the Absorbed paradigm (8192 values per
    /// window, cell-block-major).
    pub fn raw() -> Self {
        Extractor {
            kind: ExtractorKind::Raw,
            inner: Inner::Raw(HogDescriptor::new(RawCells::new(), BlockNorm::None)),
        }
    }

    /// The paradigm.
    pub fn kind(&self) -> ExtractorKind {
        self.kind
    }

    /// Captures the constructor arguments of this extractor as a
    /// serializable [`ExtractorSpec`]. Transient runtime state (an
    /// attached fault plan, accumulated hardware activity counters) is
    /// deliberately excluded; the Parrot stochastic RNG position *is*
    /// captured so a restored extractor resumes the noise stream.
    pub fn spec(&self) -> ExtractorSpec {
        match &self.inner {
            Inner::Fpga(_) => ExtractorSpec::Fpga,
            Inner::Traditional(d) => {
                ExtractorSpec::Traditional { signed_18: d.extractor().bins() == 18 }
            }
            Inner::NApprox(d) => ExtractorSpec::NApprox { model: *d.extractor(), norm: d.norm() },
            Inner::Hardware(d) => ExtractorSpec::NApproxHardware {
                spikes: d
                    .extractor()
                    .module
                    .lock()
                    .expect("hardware module lock poisoned")
                    .window(),
                norm: d.norm(),
            },
            Inner::Parrot(d) => ExtractorSpec::Parrot {
                net: d.extractor().net().clone(),
                norm: d.norm(),
                stochastic: d.extractor().stochastic_state(),
            },
            Inner::Raw(_) => ExtractorSpec::Raw,
        }
    }

    /// Rebuilds an extractor from a persisted [`ExtractorSpec`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the spec carries values no
    /// constructor would accept (a zero spike window, a Parrot network
    /// with no outputs) — the decode-but-invalid shapes a corrupted or
    /// hand-edited snapshot can produce.
    pub fn from_spec(spec: ExtractorSpec) -> crate::error::Result<Self> {
        let invalid =
            |reason: String| Error::InvalidConfig { what: "extractor spec".to_owned(), reason };
        match spec {
            ExtractorSpec::Fpga => Ok(Extractor::fpga()),
            ExtractorSpec::Traditional { signed_18: false } => Ok(Extractor::traditional()),
            ExtractorSpec::Traditional { signed_18: true } => {
                Ok(Extractor::traditional_signed_18())
            }
            ExtractorSpec::NApprox { model, norm } => {
                if let Some(q) = model.quant {
                    if q.input.levels() == 0 {
                        return Err(invalid("quantized model has zero input levels".to_owned()));
                    }
                }
                Ok(Extractor::napprox_custom(model, norm))
            }
            ExtractorSpec::NApproxHardware { spikes, norm } => {
                if spikes == 0 {
                    return Err(invalid("hardware spike window must be positive".to_owned()));
                }
                Ok(Extractor::napprox_hardware(spikes, norm))
            }
            ExtractorSpec::Parrot { net, norm, stochastic } => {
                if net.out_dim() == 0 || net.in_dim() == 0 {
                    return Err(invalid("parrot network has empty dimensions".to_owned()));
                }
                let parrot = match stochastic {
                    None => ParrotExtractor::new(net),
                    Some((0, _)) => {
                        return Err(invalid(
                            "parrot stochastic window must be positive".to_owned(),
                        ));
                    }
                    Some((spikes, state)) => {
                        ParrotExtractor::new(net).with_stochastic_rng_state(spikes, state)
                    }
                };
                Ok(Extractor::parrot(parrot, norm))
            }
            ExtractorSpec::Raw => Ok(Extractor::raw()),
        }
    }

    /// Descriptor dimensionality.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Fpga(d) => d.len(),
            Inner::Traditional(d) => d.len(),
            Inner::NApprox(d) => d.len(),
            Inner::Hardware(d) => d.len(),
            Inner::Parrot(d) => d.len(),
            Inner::Raw(d) => d.len(),
        }
    }

    /// Whether descriptors are empty (never, for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of orientation bins per cell.
    pub fn bins(&self) -> usize {
        match &self.inner {
            Inner::Fpga(d) => d.extractor().bins(),
            Inner::Traditional(d) => d.extractor().bins(),
            Inner::NApprox(d) => d.extractor().bins(),
            Inner::Hardware(d) => d.extractor().bins(),
            Inner::Parrot(d) => d.extractor().bins(),
            Inner::Raw(d) => d.extractor().bins(),
        }
    }

    /// Block-normalization policy.
    pub fn norm(&self) -> BlockNorm {
        match &self.inner {
            Inner::Fpga(d) => d.norm(),
            Inner::Traditional(d) => d.norm(),
            Inner::NApprox(d) => d.norm(),
            Inner::Hardware(d) => d.norm(),
            Inner::Parrot(d) => d.norm(),
            Inner::Raw(d) => d.norm(),
        }
    }

    /// The descriptor of a window at `(x0, y0)` in `img`.
    pub fn window_descriptor(&self, img: &GrayImage, x0: usize, y0: usize) -> Vec<f32> {
        match &self.inner {
            Inner::Fpga(d) => d.window_descriptor(img, x0, y0),
            Inner::Traditional(d) => d.window_descriptor(img, x0, y0),
            Inner::NApprox(d) => d.window_descriptor(img, x0, y0),
            Inner::Hardware(d) => d.window_descriptor(img, x0, y0),
            Inner::Parrot(d) => d.window_descriptor(img, x0, y0),
            Inner::Raw(d) => d.window_descriptor(img, x0, y0),
        }
    }

    /// The descriptor of an exactly window-sized crop.
    ///
    /// # Panics
    ///
    /// Panics if `crop` is not 64×128.
    pub fn crop_descriptor(&self, crop: &GrayImage) -> Vec<f32> {
        self.window_descriptor(crop, 0, 0)
    }

    /// The histogram of one padded 10×10 cell patch — the unit the
    /// per-level cell grid caches.
    pub fn cell_histogram(&self, patch: &GrayImage) -> Vec<f32> {
        match &self.inner {
            Inner::Fpga(d) => d.extractor().cell_histogram(patch),
            Inner::Traditional(d) => d.extractor().cell_histogram(patch),
            Inner::NApprox(d) => d.extractor().cell_histogram(patch),
            Inner::Hardware(d) => d.extractor().cell_histogram(patch),
            Inner::Parrot(d) => d.extractor().cell_histogram(patch),
            Inner::Raw(d) => d.extractor().cell_histogram(patch),
        }
    }

    /// Attaches a fault-injection plan to the simulated hardware behind
    /// this extractor. Only the [`NApproxHardware`] paradigm carries
    /// simulated cores; every other kind rejects the plan.
    ///
    /// [`NApproxHardware`]: ExtractorKind::NApproxHardware
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if this extractor has no simulated
    /// hardware; [`Error::TrueNorth`] if the plan does not fit the
    /// module's fabric.
    pub fn set_fault_plan(&self, plan: &FaultPlan) -> crate::error::Result<()> {
        match &self.inner {
            Inner::Hardware(d) => {
                let mut module =
                    d.extractor().module.lock().expect("hardware module lock poisoned");
                module.set_fault_plan(plan).map_err(Error::from)
            }
            _ => Err(Error::InvalidConfig {
                what: "fault plan".to_owned(),
                reason: format!(
                    "the {} paradigm has no simulated hardware to inject into \
                     (use Extractor::napprox_hardware)",
                    self.kind.label()
                ),
            }),
        }
    }

    /// Detaches any fault plan from the simulated hardware. A no-op for
    /// paradigms without simulated cores.
    pub fn clear_fault_plan(&self) {
        if let Inner::Hardware(d) = &self.inner {
            d.extractor().module.lock().expect("hardware module lock poisoned").clear_fault_plan();
        }
    }

    /// Fault-activity counters from the simulated hardware — `None`
    /// unless this is the hardware paradigm with a plan attached.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match &self.inner {
            Inner::Hardware(d) => {
                d.extractor().module.lock().expect("hardware module lock poisoned").fault_stats()
            }
            _ => None,
        }
    }

    /// Activity counters from the simulated hardware — `None` for
    /// paradigms without simulated cores.
    pub fn hardware_stats(&self) -> Option<SystemStats> {
        match &self.inner {
            Inner::Hardware(d) => {
                Some(d.extractor().module.lock().expect("hardware module lock poisoned").stats())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_lengths_match_paper() {
        assert_eq!(Extractor::fpga().len(), 3780);
        assert_eq!(Extractor::traditional().len(), 3780);
        assert_eq!(Extractor::napprox_fp(BlockNorm::L2).len(), 7560);
        assert_eq!(Extractor::napprox_fp(BlockNorm::None).len(), 2304);
        assert_eq!(Extractor::napprox_quantized(64, BlockNorm::None).len(), 2304);
    }

    #[test]
    fn raw_extractor_is_identity() {
        let img = GrayImage::from_fn(64, 128, |x, y| ((x + y) % 7) as f32 / 7.0);
        let e = Extractor::raw();
        assert_eq!(e.len(), 8192);
        let d = e.crop_descriptor(&img);
        // First cell block starts with pixel (0,0).
        assert_eq!(d[0], img.get(0, 0));
        assert_eq!(d.len(), 8192);
    }

    #[test]
    fn kinds_and_labels() {
        assert_eq!(Extractor::fpga().kind().label(), "FPGA-HoG");
        assert_eq!(Extractor::napprox_fp(BlockNorm::L2).kind(), ExtractorKind::NApproxFp);
    }

    #[test]
    fn kind_display_round_trips_through_from_str() {
        for kind in ExtractorKind::ALL {
            let parsed: ExtractorKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind, "label {:?}", kind.label());
        }
    }

    #[test]
    fn kind_parses_cli_aliases() {
        assert_eq!("fpga".parse::<ExtractorKind>().unwrap(), ExtractorKind::Fpga);
        assert_eq!("TRAD".parse::<ExtractorKind>().unwrap(), ExtractorKind::Traditional);
        assert_eq!("napprox-fp".parse::<ExtractorKind>().unwrap(), ExtractorKind::NApproxFp);
        assert_eq!("napprox".parse::<ExtractorKind>().unwrap(), ExtractorKind::NApproxQuantized);
        assert_eq!("napprox-hw".parse::<ExtractorKind>().unwrap(), ExtractorKind::NApproxHardware);
        assert_eq!("Parrot".parse::<ExtractorKind>().unwrap(), ExtractorKind::Parrot);
        assert_eq!("raw".parse::<ExtractorKind>().unwrap(), ExtractorKind::Raw);
        let err = "hogg".parse::<ExtractorKind>().unwrap_err();
        assert!(matches!(err, Error::UnknownExtractor { .. }), "{err}");
    }

    #[test]
    fn hardware_extractor_matches_quantized_arithmetic() {
        let patch = GrayImage::from_fn(10, 10, |x, y| ((x * 13 + y * 7) % 11) as f32 / 11.0);
        let hw = Extractor::napprox_hardware(64, BlockNorm::None);
        assert_eq!(hw.kind(), ExtractorKind::NApproxHardware);
        assert_eq!(hw.bins(), 18);
        let sw = Extractor::napprox_quantized(64, BlockNorm::None);
        // The simulated cores compute the same quantized histogram shape;
        // both vote the same dominant bins.
        let h = hw.cell_histogram(&patch);
        let s = sw.cell_histogram(&patch);
        assert_eq!(h.len(), s.len());
        let corr = pcnn_hog::quantize::pearson_correlation(&h, &s).unwrap();
        assert!(corr > 0.8, "corr {corr}");
    }

    #[test]
    fn fault_plan_only_attaches_to_hardware() {
        let plan = pcnn_truenorth::FaultPlan::seeded(3).with_dead_core(0);
        let sw = Extractor::napprox_quantized(64, BlockNorm::None);
        let err = sw.set_fault_plan(&plan).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
        assert!(sw.fault_stats().is_none());
        assert!(sw.hardware_stats().is_none());

        let hw = Extractor::napprox_hardware(64, BlockNorm::None);
        hw.set_fault_plan(&plan).unwrap();
        let patch = GrayImage::from_fn(10, 10, |x, y| ((x + y) % 5) as f32 / 5.0);
        let _ = hw.cell_histogram(&patch);
        assert!(hw.fault_stats().is_some());
        assert!(hw.hardware_stats().is_some());
        hw.clear_fault_plan();
        assert!(hw.fault_stats().is_none());
    }

    #[test]
    fn extractors_produce_different_descriptors_same_signal() {
        let img = GrayImage::from_fn(64, 128, |x, y| {
            0.5 + 0.3 * ((x as f32 * 0.3).sin() * (y as f32 * 0.2).cos())
        });
        let a = Extractor::napprox_fp(BlockNorm::None).crop_descriptor(&img);
        let b = Extractor::napprox_quantized(64, BlockNorm::None).crop_descriptor(&img);
        assert_eq!(a.len(), b.len());
        // Same algorithm, different precision: close but not identical.
        assert_ne!(a, b);
        let corr = pcnn_hog::quantize::pearson_correlation(&a, &b).unwrap();
        assert!(corr > 0.85, "corr {corr}");
    }
}
