//! Stream identity shared by the serving runtime and the cluster tier.

use serde::{Deserialize, Serialize};

/// Identity of one video stream (one camera), stable across frames,
/// batches, shards and model swaps.
///
/// A newtype over `u64` so a stream id cannot be confused with a frame
/// index, a shard id or a generation — the runtime's per-stream caches
/// and the cluster's rendezvous routing both key on this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(u64);

impl StreamId {
    /// A stream id from its raw value.
    pub const fn new(raw: u64) -> Self {
        StreamId(raw)
    }

    /// The raw value (for hashing/routing).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for StreamId {
    fn from(raw: u64) -> Self {
        StreamId(raw)
    }
}

impl From<StreamId> for u64 {
    fn from(id: StreamId) -> Self {
        id.0
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let id = StreamId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(StreamId::from(42u64), id);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(StreamId::new(7).to_string(), "stream-7");
    }

    #[test]
    fn serde_roundtrip() {
        let id = StreamId::new(9001);
        let v = serde::Serialize::to_value(&id);
        let back: StreamId = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, id);
    }
}
