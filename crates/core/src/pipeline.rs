//! The end-to-end detection pipeline.
//!
//! Methodology follows §4 of the paper: each test image is scanned with
//! 64×128 windows across a 1.1×-stepped scale pyramid; window scores come
//! from the classifier; detections are narrowed by NMS with ε = 0.2 and
//! evaluated as miss rate versus false positives per image.
//!
//! Cell histograms are computed **once per pyramid level** on an 8-px
//! grid and windows gather 8×16 blocks of them — the same factorization
//! the hardware uses (cell modules stream cells; windows are assembled
//! downstream), and the only way a trained-network extractor stays
//! tractable on full scenes.

use crate::classifier::WindowClassifier;
use crate::extractor::Extractor;
use pcnn_hog::block::assemble_descriptor;
use pcnn_hog::cell::{cell_patch, CELL_SIZE};
use pcnn_vision::pyramid::{scale_pyramid, PyramidConfig};
use pcnn_vision::{
    non_maximum_suppression, BoundingBox, Detection, DetectionCurve, Evaluator, GrayImage,
    SynthScene, WINDOW_HEIGHT, WINDOW_WIDTH,
};
use serde::{Deserialize, Serialize};

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Pyramid configuration (the paper: step 1.1, up to 15 levels).
    pub pyramid: PyramidConfig,
    /// NMS overlap threshold (the paper: ε = 0.2).
    pub nms_epsilon: f32,
    /// Score floor below which windows are discarded before NMS. Keeps
    /// curve sweeps tractable without clipping the interesting region.
    pub score_floor: f32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { pyramid: PyramidConfig::default(), nms_epsilon: 0.2, score_floor: -1.0 }
    }
}

/// An extractor/classifier pair ready to detect pedestrians.
#[derive(Debug)]
pub struct TrainedDetector {
    /// The feature extractor.
    pub extractor: Extractor,
    /// The trained classifier.
    pub classifier: WindowClassifier,
}

/// The detection engine.
#[derive(Debug)]
pub struct Detector {
    config: DetectorConfig,
}

impl Default for Detector {
    fn default() -> Self {
        Self::new(DetectorConfig::default())
    }
}

impl Detector {
    /// A detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Detector { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Computes the cell-histogram grid of one image: `grid[cy][cx]` for
    /// every complete 8×8 cell.
    pub fn cell_grid(extractor: &Extractor, img: &GrayImage) -> Vec<Vec<Vec<f32>>> {
        let cells_x = img.width() / CELL_SIZE;
        let cells_y = img.height() / CELL_SIZE;
        (0..cells_y)
            .map(|cy| {
                (0..cells_x)
                    .map(|cx| {
                        let patch = cell_patch(img, 0, 0, cx, cy);
                        extractor.cell_histogram(&patch)
                    })
                    .collect()
            })
            .collect()
    }

    /// Number of valid window start rows in a level's cell grid (0 when
    /// the level is too small to hold one window).
    pub fn window_rows(grid: &[Vec<Vec<f32>>]) -> usize {
        let window_cells_x = WINDOW_WIDTH / CELL_SIZE;
        let window_cells_y = WINDOW_HEIGHT / CELL_SIZE;
        if grid.len() < window_cells_y || grid[0].len() < window_cells_x {
            0
        } else {
            grid.len() - window_cells_y + 1
        }
    }

    /// Scores every window whose top cell row lies in `rows`, against a
    /// precomputed [`cell_grid`](Detector::cell_grid) of one pyramid
    /// level at `scale`. Returns raw (pre-NMS) detections above the
    /// score floor, in original-image coordinates, ordered row-major —
    /// the exact order the serial scan visits them. This is the work
    /// unit the serving runtime parallelizes over: concatenating chunk
    /// results in row order reproduces the serial scan bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `rows` extends past
    /// [`window_rows`](Detector::window_rows).
    pub fn score_rows(
        &self,
        detector: &TrainedDetector,
        grid: &[Vec<Vec<f32>>],
        scale: f32,
        rows: std::ops::Range<usize>,
    ) -> Vec<Detection> {
        assert!(
            rows.end <= Self::window_rows(grid),
            "row range {rows:?} exceeds {} valid window rows",
            Self::window_rows(grid)
        );
        let window_cells_x = WINDOW_WIDTH / CELL_SIZE;
        let window_cells_y = WINDOW_HEIGHT / CELL_SIZE;
        let norm = detector.extractor.norm();
        let mut raw = Vec::new();
        for cy0 in rows {
            for cx0 in 0..=(grid[0].len() - window_cells_x) {
                let sub: Vec<Vec<Vec<f32>>> = grid[cy0..cy0 + window_cells_y]
                    .iter()
                    .map(|row| row[cx0..cx0 + window_cells_x].to_vec())
                    .collect();
                let descriptor = assemble_descriptor(&sub, norm);
                let score = detector.classifier.score(&descriptor);
                if score < self.config.score_floor {
                    continue;
                }
                let bbox = BoundingBox::new(
                    (cx0 * CELL_SIZE) as f32,
                    (cy0 * CELL_SIZE) as f32,
                    WINDOW_WIDTH as f32,
                    WINDOW_HEIGHT as f32,
                )
                .unscale(scale);
                raw.push(Detection { bbox, score });
            }
        }
        raw
    }

    /// Runs detection over one image, returning NMS-filtered detections
    /// in original-image coordinates.
    pub fn detect(&self, detector: &TrainedDetector, img: &GrayImage) -> Vec<Detection> {
        let pyramid = scale_pyramid(img, self.config.pyramid);
        let mut raw: Vec<Detection> = Vec::new();
        for level in &pyramid.levels {
            let grid = Self::cell_grid(&detector.extractor, &level.image);
            let rows = Self::window_rows(&grid);
            raw.extend(self.score_rows(detector, &grid, level.scale, 0..rows));
        }
        non_maximum_suppression(raw, self.config.nms_epsilon)
    }

    /// Evaluates a detector over a set of scenes, producing the
    /// miss-rate/FPPI curve.
    ///
    /// # Panics
    ///
    /// Panics if `scenes` is empty.
    pub fn evaluate(&self, detector: &TrainedDetector, scenes: &[SynthScene]) -> DetectionCurve {
        assert!(!scenes.is_empty(), "no scenes to evaluate");
        let mut evaluator = Evaluator::new();
        for scene in scenes {
            let detections = self.detect(detector, &scene.image);
            evaluator.add_image(&detections, &scene.pedestrians);
        }
        evaluator.curve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_hog::BlockNorm;
    use pcnn_svm::{train, FeatureScaler, TrainConfig};
    use pcnn_vision::{SynthConfig, SynthDataset};

    /// Trains a small SVM detector on NApprox(fp) features.
    fn small_detector() -> TrainedDetector {
        let ds = SynthDataset::new(SynthConfig::default());
        let extractor = Extractor::napprox_fp(BlockNorm::L2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            xs.push(extractor.crop_descriptor(&ds.train_positive(i)));
            ys.push(true);
            xs.push(extractor.crop_descriptor(&ds.train_negative(i)));
            ys.push(false);
        }
        let scaler = FeatureScaler::fit(&xs);
        let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
        TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
    }

    #[test]
    fn cell_grid_shape() {
        let img = GrayImage::new(80, 96);
        let grid = Detector::cell_grid(&Extractor::napprox_fp(BlockNorm::None), &img);
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0].len(), 10);
        assert_eq!(grid[0][0].len(), 18);
    }

    #[test]
    fn grid_descriptor_matches_direct_descriptor() {
        // Window assembly from the cached grid must equal the direct
        // window computation at cell-aligned offsets.
        let img = GrayImage::from_fn(96, 160, |x, y| {
            0.5 + 0.3 * ((x as f32 * 0.37).sin() * (y as f32 * 0.21).cos())
        });
        let ex = Extractor::napprox_fp(BlockNorm::L2);
        let grid = Detector::cell_grid(&ex, &img);
        let sub: Vec<Vec<Vec<f32>>> = grid[1..17].iter().map(|r| r[2..10].to_vec()).collect();
        let from_grid = assemble_descriptor(&sub, BlockNorm::L2);
        let direct = ex.window_descriptor(&img, 16, 8);
        assert_eq!(from_grid.len(), direct.len());
        for (a, b) in from_grid.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn detector_finds_planted_pedestrian() {
        let det = small_detector();
        let engine = Detector::default();
        let ds = SynthDataset::new(SynthConfig::default());
        // Find a scene with at least one pedestrian.
        let scene = (0..20)
            .map(|i| ds.test_scene(i))
            .find(|s| !s.pedestrians.is_empty())
            .expect("some scene has a pedestrian");
        let detections = engine.detect(&det, &scene.image);
        assert!(!detections.is_empty(), "no detections at all");
        // The best-scoring detection overlaps a true pedestrian.
        let best = &detections[0];
        let hit = scene
            .pedestrians
            .iter()
            .any(|gt| best.bbox.overlap_over(gt) >= 0.3 || best.bbox.iou(gt) >= 0.3);
        assert!(hit, "best detection {best:?} misses all of {:?}", scene.pedestrians);
    }

    #[test]
    fn evaluation_produces_curve() {
        let det = small_detector();
        let engine = Detector::default();
        let ds = SynthDataset::new(SynthConfig::default());
        let scenes: Vec<_> = (0..6).map(|i| ds.test_scene(i)).collect();
        let curve = engine.evaluate(&det, &scenes);
        assert_eq!(curve.images, 6);
        let lamr = curve.log_average_miss_rate();
        assert!((0.0..=1.0).contains(&lamr), "lamr {lamr}");
        // A trained detector must beat the blind detector (lamr 1.0).
        assert!(lamr < 0.9, "lamr {lamr}");
    }
}
