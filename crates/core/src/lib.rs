//! Partitioned co-training of feature extraction and classification —
//! the paper's primary contribution, assembled from the workspace's
//! substrates.
//!
//! The crate provides:
//!
//! * [`extractor`] — the window-level feature extractors under one
//!   type: FPGA fixed-point HoG, Dalal–Triggs, NApprox (full precision,
//!   TrueNorth-quantized, and running on simulated fault-injectable
//!   cores) and the trained Parrot network;
//! * [`error`] — the workspace-level [`Error`] returned by the fallible
//!   `try_*` construction paths, so serving processes can degrade
//!   instead of panicking;
//! * [`classifier`] — the two classification back-ends: a linear SVM
//!   (with hard-negative mining) and an Eedn-constrained network, both
//!   consuming window descriptors through a shared interface;
//! * [`pipeline`] — the end-to-end detector: scale pyramid → per-level
//!   cell grids → window descriptors → scores → NMS → miss-rate/FPPI
//!   evaluation;
//! * [`cotrain`] — the three design paradigms as buildable systems:
//!   partitioned NApprox + classifier, partitioned Parrot + classifier
//!   (co-trained), and the iso-resource Absorbed monolithic network,
//!   with collapse detection reproducing §5.1's observation;
//! * [`faultsweep`] — accuracy under injected hardware faults: miss
//!   rate versus fault rate per paradigm, feeding the serving runtime's
//!   degradation policy;
//! * [`resources`] — core-count accounting for every paradigm;
//! * [`power`] — the §5.2 analytic power/throughput model that
//!   regenerates Table 2;
//! * [`report`] — plain-text rendering of curves and tables for the
//!   bench harness;
//! * [`snapshot`] — serializable [`DetectorSnapshot`]s that rebuild
//!   behaviorally identical detectors across processes (persisted by
//!   the `pcnn-store` crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod cotrain;
pub mod error;
pub mod extractor;
pub mod faultsweep;
pub mod pipeline;
pub mod power;
pub mod report;
pub mod resources;
pub mod snapshot;
pub mod stream;

pub use classifier::{
    EednCheckpoint, EednClassifier, EednClassifierConfig, EednClassifierState, WindowClassifier,
};
pub use cotrain::{AbsorbedOutcome, AbsorbedSystem, PartitionedSystem, TrainSetConfig};
pub use error::{Error, Result};
pub use extractor::{Extractor, ExtractorKind, ExtractorSpec};
pub use faultsweep::{run_fault_sweep, FaultSweepConfig, FaultSweepPoint, FaultSweepReport};
pub use pipeline::{Detector, DetectorConfig, TrainedDetector};
pub use power::{DeploymentPower, FpgaPower, PowerTable, Table2Row};
pub use resources::ResourceBudget;
pub use snapshot::{ClassifierSnapshot, DetectorSnapshot};
pub use stream::StreamId;
