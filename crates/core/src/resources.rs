//! Core-count accounting — the paper's resource currency.
//!
//! §5.1 sizes its systems in TrueNorth cores: the Eedn classifier uses
//! 2864 cores; the Parrot extractor 8 cores per 8×8 cell (1024 for a
//! 64×128 window); the combined partitioned system 3888 cores, which is
//! the budget the Absorbed monolithic network is granted ("iso-resource").
//! The NApprox extractor module uses 26 cores per cell.
//!
//! This module carries both the paper's figures and the counts measured
//! from this workspace's own implementations, so every experiment can
//! report the two side by side.

use serde::{Deserialize, Serialize};

/// Cells in a 64×128 detection window (8×16).
pub const CELLS_PER_WINDOW: usize = 128;

/// A system's core budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Cores per feature-extractor cell module.
    pub extractor_cores_per_cell: usize,
    /// Cores of the classifier network.
    pub classifier_cores: usize,
}

impl ResourceBudget {
    /// The paper's Parrot figures: 8 cores per cell, 2864-core classifier.
    pub fn paper_parrot() -> Self {
        ResourceBudget { extractor_cores_per_cell: 8, classifier_cores: 2864 }
    }

    /// The paper's NApprox figures: 26 cores per cell module, the same
    /// 2864-core classifier.
    pub fn paper_napprox() -> Self {
        ResourceBudget { extractor_cores_per_cell: 26, classifier_cores: 2864 }
    }

    /// Extractor cores for one full window.
    pub fn extractor_cores_per_window(&self) -> usize {
        self.extractor_cores_per_cell * CELLS_PER_WINDOW
    }

    /// The combined (extractor + classifier) budget — what the paper
    /// grants the Absorbed monolithic network.
    pub fn combined_cores(&self) -> usize {
        self.extractor_cores_per_window() + self.classifier_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parrot_budget_is_3888() {
        // "Combining the two Eedn networks, 3888 cores are used."
        let b = ResourceBudget::paper_parrot();
        assert_eq!(b.extractor_cores_per_window(), 1024);
        assert_eq!(b.combined_cores(), 3888);
    }

    #[test]
    fn napprox_uses_more_extractor_cores() {
        let n = ResourceBudget::paper_napprox();
        let p = ResourceBudget::paper_parrot();
        assert!(n.extractor_cores_per_cell > 3 * p.extractor_cores_per_cell);
    }
}
