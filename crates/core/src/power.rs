//! The §5.2 power/throughput model — regenerates Table 2.
//!
//! The paper's arithmetic, reproduced exactly:
//!
//! * a full-HD frame is scanned at six 1.1×-stepped scales, 57,749 cells
//!   per frame; at 26 fps the system must process ≈ 1.5 M cells/s;
//! * a cell module pipelines one result per coding window, so its
//!   throughput is `1000 / window` cells/s at the 1 kHz tick (64-spike
//!   NApprox ⇒ 15.6 ≈ "15 cells/sec"; 32-spike Parrot ⇒ 31.25 ≈ "31";
//!   1-spike ⇒ 1000);
//! * modules needed = required cells/s ÷ module throughput; cores =
//!   modules × cores-per-module; power = cores × 16 µW.

use crate::error::{Error, Result};
use pcnn_truenorth::{PowerModel, CHIP_CORES};
use pcnn_vision::pyramid::full_hd_total_cells;
use serde::{Deserialize, Serialize};

/// Frame rate of the paper's full-HD workload.
pub const FULL_HD_FPS: f64 = 26.0;

/// The FPGA baseline's published power figures (Advani et al. on a
/// Virtex-7 690T with a CAPI interface, as synthesized by the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaPower {
    /// HoG accelerator logic in isolation, watts.
    pub logic_w: f64,
    /// System level including clocking and CAPI peripherals, watts.
    pub system_w: f64,
}

impl Default for FpgaPower {
    fn default() -> Self {
        FpgaPower { logic_w: 1.12, system_w: 8.6 }
    }
}

/// A neuromorphic feature-extraction deployment to be power-modelled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPower {
    /// Approach label ("NApprox HoG", "Parrot HoG"…).
    pub approach: String,
    /// Input coding window in ticks (spikes per value).
    pub window: u32,
    /// TrueNorth cores per cell module.
    pub module_cores: usize,
}

impl DeploymentPower {
    /// Cells/s one module sustains, pipelined at the 1 kHz tick.
    pub fn module_throughput(&self) -> f64 {
        1000.0 / f64::from(self.window)
    }

    /// Nominal bit resolution of the coding (64-spike = 6-bit…).
    pub fn resolution_bits(&self) -> u32 {
        (31 - self.window.leading_zeros()).max(1)
    }

    /// Evaluates the deployment against a required cell rate.
    pub fn evaluate(&self, required_cells_per_s: f64, model: &PowerModel) -> Table2Row {
        let modules = (required_cells_per_s / self.module_throughput()).ceil();
        let cores = modules as usize * self.module_cores;
        let estimate = model.static_estimate(cores);
        Table2Row {
            approach: self.approach.clone(),
            signal: format!("{}-spike ({}-bit)", self.window, self.resolution_bits()),
            modules: modules as usize,
            cores,
            chips: estimate.chips,
            power_w: estimate.watts,
        }
    }
}

/// One row of the reproduced Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Approach label.
    pub approach: String,
    /// Signal-resolution description.
    pub signal: String,
    /// Cell modules deployed.
    pub modules: usize,
    /// Total cores.
    pub cores: usize,
    /// Equivalent chips (fractional).
    pub chips: f64,
    /// Estimated power in watts.
    pub power_w: f64,
}

/// The complete power comparison of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTable {
    /// The FPGA baseline row (constant published figures).
    pub fpga: FpgaPower,
    /// The neuromorphic rows.
    pub rows: Vec<Table2Row>,
    /// The workload: required cells per second.
    pub required_cells_per_s: f64,
}

impl PowerTable {
    /// Builds Table 2 for the full-HD @ 26 fps workload with the paper's
    /// module core counts (NApprox 26, Parrot 8).
    pub fn paper() -> Self {
        Self::for_configs(
            full_hd_cells_per_second(),
            &[
                DeploymentPower {
                    approach: "NApprox HoG".to_owned(),
                    window: 64,
                    module_cores: 26,
                },
                DeploymentPower { approach: "Parrot HoG".to_owned(), window: 32, module_cores: 8 },
                DeploymentPower { approach: "Parrot HoG".to_owned(), window: 4, module_cores: 8 },
                DeploymentPower { approach: "Parrot HoG".to_owned(), window: 1, module_cores: 8 },
            ],
        )
    }

    /// Builds the table for arbitrary deployments.
    pub fn for_configs(required_cells_per_s: f64, configs: &[DeploymentPower]) -> Self {
        let model = PowerModel::paper();
        PowerTable {
            fpga: FpgaPower::default(),
            rows: configs.iter().map(|c| c.evaluate(required_cells_per_s, &model)).collect(),
            required_cells_per_s,
        }
    }

    /// The paper's headline: the power ratio between the NApprox row and
    /// a given Parrot row (6.5× at 32-spike, 208× at 1-spike).
    ///
    /// Thin panicking wrapper over
    /// [`try_napprox_over`](PowerTable::try_napprox_over).
    ///
    /// # Panics
    ///
    /// Panics if the table lacks an NApprox row or the indexed row.
    pub fn napprox_over(&self, row: usize) -> f64 {
        self.try_napprox_over(row).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible power-ratio lookup: reports a missing NApprox row or an
    /// out-of-range row index as [`Error`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`Error::MissingEntry`] naming the absent row.
    pub fn try_napprox_over(&self, row: usize) -> Result<f64> {
        let napprox = self
            .rows
            .iter()
            .find(|r| r.approach.contains("NApprox"))
            .ok_or_else(|| Error::MissingEntry { what: "table has no NApprox row".into() })?;
        let denom = self.rows.get(row).ok_or_else(|| Error::MissingEntry {
            what: format!("power-table row {row} (table has {} rows)", self.rows.len()),
        })?;
        Ok(napprox.power_w / denom.power_w)
    }
}

/// The full-HD workload's required cell rate (57,749 cells × 26 fps).
pub fn full_hd_cells_per_second() -> f64 {
    full_hd_total_cells() as f64 * FULL_HD_FPS
}

/// Chips needed to host `cores` cores.
pub fn chips_for(cores: usize) -> usize {
    cores.div_ceil(CHIP_CORES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matches_paper() {
        // 57,749 cells/frame at 26 fps ≈ 1.5 M cells/s.
        let rate = full_hd_cells_per_second();
        assert!((rate - 1_501_474.0).abs() < 1.0);
    }

    #[test]
    fn table2_reproduces_paper_numbers() {
        let table = PowerTable::paper();
        let w: Vec<f64> = table.rows.iter().map(|r| r.power_w).collect();
        // NApprox 64-spike ≈ 40 W.
        assert!((w[0] - 40.0).abs() < 1.0, "NApprox {} W", w[0]);
        // Parrot 32-spike ≈ 6.15 W.
        assert!((w[1] - 6.15).abs() < 0.1, "Parrot-32 {} W", w[1]);
        // Parrot 4-spike ≈ 768 mW.
        assert!((w[2] * 1000.0 - 768.0).abs() < 10.0, "Parrot-4 {} W", w[2]);
        // Parrot 1-spike ≈ 192 mW.
        assert!((w[3] * 1000.0 - 192.0).abs() < 3.0, "Parrot-1 {} W", w[3]);
    }

    #[test]
    fn power_ratios_span_65x_to_208x() {
        let table = PowerTable::paper();
        let low = table.napprox_over(1);
        let high = table.napprox_over(3);
        assert!((low - 6.5).abs() < 0.2, "32-spike ratio {low}");
        assert!((high - 208.0).abs() < 6.0, "1-spike ratio {high}");
    }

    #[test]
    fn napprox_needs_about_650_chips() {
        let table = PowerTable::paper();
        let chips = chips_for(table.rows[0].cores);
        assert!((580..=660).contains(&chips), "chips {chips}");
    }

    #[test]
    fn module_throughputs_match_paper() {
        let napprox = DeploymentPower { approach: "n".into(), window: 64, module_cores: 26 };
        assert!((napprox.module_throughput() - 15.6).abs() < 0.1);
        let parrot = DeploymentPower { approach: "p".into(), window: 32, module_cores: 8 };
        assert!((parrot.module_throughput() - 31.25).abs() < 0.01);
        let parrot1 = DeploymentPower { approach: "p".into(), window: 1, module_cores: 8 };
        assert_eq!(parrot1.module_throughput(), 1000.0);
    }

    #[test]
    fn try_napprox_over_reports_missing_rows() {
        let table = PowerTable::paper();
        assert!(table.try_napprox_over(1).is_ok());
        let err = table.try_napprox_over(99).unwrap_err();
        assert!(matches!(err, Error::MissingEntry { .. }), "{err}");
        let empty = PowerTable::for_configs(1.0, &[]);
        let err = empty.try_napprox_over(0).unwrap_err();
        assert!(err.to_string().contains("NApprox"));
    }

    #[test]
    fn fpga_power_between_parrot32_and_napprox() {
        let table = PowerTable::paper();
        assert!(table.fpga.system_w > table.rows[1].power_w);
        assert!(table.fpga.system_w < table.rows[0].power_w);
    }
}
