//! Seeded property sweep: the GEMM-backed compute path vs the naive
//! reference oracle in [`pcnn_eedn::reference`].
//!
//! The determinism contract (see DESIGN.md "Compute kernels"):
//!
//! * forward outputs and the conv `gw`/`galpha`/`gbias` gradients are
//!   **bit-identical** to the naive loops;
//! * `GroupedLinear` is bit-identical throughout, including `grad_in`;
//! * only the conv `grad_in` is tolerance-bound
//!   (`|d| <= 1e-5 + 1e-5·|ref|`), because `col2im` reassociates the
//!   scatter over output channels and kernel taps.

use pcnn_eedn::reference::{
    conv2d_backward, conv2d_forward, grouped_linear_backward, grouped_linear_forward,
};
use pcnn_eedn::{Conv2d, GroupedLinear, Layer, Tensor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rand_tensor(rng: &mut SmallRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.random_range(-1.0..1.0f32)).collect();
    Tensor::from_vec(shape, data)
}

/// A gradient tensor with ~30% exact zeros, exercising the reference
/// oracle's `dy == 0` skip path against the kernel path (which never
/// skips — the contract relies on `±0.0` terms being exact no-ops).
fn rand_grad(rng: &mut SmallRng, shape: &[usize]) -> Tensor {
    let mut g = rand_tensor(rng, shape);
    for v in g.data_mut() {
        if rng.random_range(0.0..1.0f32) < 0.3 {
            *v = 0.0;
        }
    }
    g
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}[{i}]: kernel {x} != reference {y}");
    }
}

fn assert_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        let tol = 1e-5 + 1e-5 * y.abs();
        assert!((x - y).abs() <= tol, "{what}[{i}]: kernel {x} vs reference {y} (tol {tol})");
    }
}

#[test]
fn conv2d_matches_reference_across_shape_sweep() {
    let mut rng = SmallRng::seed_from_u64(0xc0ff_ee00);
    // Non-square input; 8 in/out channels so groups can be 1, 4 or
    // out_ch (depthwise-style icg = ocg = 1).
    let (cin, cout, h, w) = (8usize, 8usize, 9usize, 7usize);
    let mut case = 0u64;
    for k in [1usize, 3, 5] {
        for stride in [1usize, 2] {
            for pad in [0usize, 1] {
                for groups in [1usize, 4, 8] {
                    for trinary in [false, true] {
                        case += 1;
                        let batch = 1 + (case as usize % 3);
                        let tag = format!(
                            "conv k={k} s={stride} p={pad} g={groups} tri={trinary} b={batch}"
                        );
                        let mut layer =
                            Conv2d::new(cin, cout, k, stride, pad, groups, trinary, 1000 + case);
                        let input = rand_tensor(&mut rng, &[batch, cin, h, w]);
                        let w_eff = layer.effective_weights();
                        let spec = layer.spec();
                        let (pre_ref, out_ref) =
                            conv2d_forward(&spec, &w_eff, layer.alpha(), layer.bias(), &input);

                        let out = layer.forward(&input, true);
                        assert_bits_eq(out.data(), out_ref.data(), &format!("{tag}: forward"));
                        let inf = layer.infer(&input);
                        assert_bits_eq(inf.data(), out_ref.data(), &format!("{tag}: infer"));

                        let (ho, wo) = spec.out_size(h, w);
                        let go = rand_grad(&mut rng, &[batch, cout, ho, wo]);
                        let gref =
                            conv2d_backward(&spec, &w_eff, layer.alpha(), &input, &pre_ref, &go);
                        let grad_in = layer.backward(&go);
                        let (gw, ga, gb) = layer.debug_grads();
                        assert_bits_eq(gw, &gref.gw, &format!("{tag}: gw"));
                        assert_bits_eq(ga, &gref.galpha, &format!("{tag}: galpha"));
                        assert_bits_eq(gb, &gref.gbias, &format!("{tag}: gbias"));
                        assert_close(
                            grad_in.data(),
                            gref.grad_in.data(),
                            &format!("{tag}: grad_in"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn grouped_linear_matches_reference_bitwise() {
    let mut rng = SmallRng::seed_from_u64(0xfee1_dead);
    // (in_dim, out_dim, groups): groups 1, interior, out_dim (out_g = 1).
    let cases = [(6usize, 4usize, 2usize), (8, 8, 8), (5, 7, 1), (12, 9, 3), (16, 8, 4), (4, 4, 1)];
    for (case, &(in_dim, out_dim, groups)) in cases.iter().enumerate() {
        for trinary in [false, true] {
            let batch = 1 + case % 3;
            let tag = format!("linear in={in_dim} out={out_dim} g={groups} tri={trinary}");
            let mut layer =
                GroupedLinear::new(in_dim, out_dim, groups, trinary, 2000 + case as u64);
            let input = rand_tensor(&mut rng, &[batch, in_dim]);
            let w_eff = layer.effective_weights();
            let spec = layer.spec();
            let (pre_ref, out_ref) =
                grouped_linear_forward(&spec, &w_eff, layer.alpha(), layer.bias(), &input);

            let out = layer.forward(&input, true);
            assert_bits_eq(out.data(), out_ref.data(), &format!("{tag}: forward"));

            let go = rand_grad(&mut rng, &[batch, out_dim]);
            let gref = grouped_linear_backward(&spec, &w_eff, layer.alpha(), &input, &pre_ref, &go);
            let grad_in = layer.backward(&go);
            let (gw, ga, gb) = layer.debug_grads();
            assert_bits_eq(gw, &gref.gw, &format!("{tag}: gw"));
            assert_bits_eq(ga, &gref.galpha, &format!("{tag}: galpha"));
            assert_bits_eq(gb, &gref.gbias, &format!("{tag}: gbias"));
            // The FC GEMMs keep per-element sequential-k accumulation, so
            // even grad_in is bit-identical here.
            assert_bits_eq(grad_in.data(), gref.grad_in.data(), &format!("{tag}: grad_in"));
        }
    }
}

/// Shadow weights that deploy at an exact target density: `0.0` (all in
/// the dead zone), `0.5` (alternating), or `1.0` (all ±1), with signs
/// alternating among the nonzero slots.
fn shadows_at_density(n: usize, density: f32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let nonzero = if density == 0.0 {
                false
            } else if density == 1.0 {
                true
            } else {
                i % 2 == 0
            };
            if nonzero {
                if i % 4 < 2 {
                    0.9
                } else {
                    -0.9
                }
            } else {
                0.1
            }
        })
        .collect()
}

/// The trinary inference path across dead-zone densities 0%, 50% and
/// 100%: bit-identical to the reference oracle AND to the f32 training
/// forward, at every (k, stride, pad, groups) corner. The 0% case pins
/// the degenerate all-zero bitplanes (output is pure bias), 100% the
/// dense bit walk.
#[test]
fn trinary_density_sweep_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(0x7121_0000);
    let (cin, cout, h, w) = (8usize, 8usize, 9usize, 7usize);
    for density in [0.0f32, 0.5, 1.0] {
        for k in [1usize, 3, 5] {
            for stride in [1usize, 2] {
                for pad in [0usize, 1] {
                    for groups in [1usize, 4, 8] {
                        let tag =
                            format!("tri-conv d={density} k={k} s={stride} p={pad} g={groups}");
                        let mut layer = Conv2d::new(cin, cout, k, stride, pad, groups, true, 3000);
                        let n_w = cout * (cin / groups) * k * k;
                        layer.debug_set_shadow_weights(&shadows_at_density(n_w, density));
                        let w_eff = layer.effective_weights();
                        assert_eq!(
                            pcnn_eedn::trinary::density(&w_eff),
                            density,
                            "{tag}: crafted density"
                        );
                        let input = rand_tensor(&mut rng, &[2, cin, h, w]);
                        let (_, out_ref) = conv2d_forward(
                            &layer.spec(),
                            &w_eff,
                            layer.alpha(),
                            layer.bias(),
                            &input,
                        );
                        let inf = layer.infer(&input);
                        assert_bits_eq(inf.data(), out_ref.data(), &format!("{tag}: infer"));
                        let fwd = layer.forward(&input, false);
                        assert_bits_eq(inf.data(), fwd.data(), &format!("{tag}: infer vs f32"));
                    }
                }
            }
        }
        // GroupedLinear through the same densities.
        for &(in_dim, out_dim, groups) in &[(8usize, 8usize, 2usize), (12, 8, 4), (6, 9, 3)] {
            let tag = format!("tri-linear d={density} in={in_dim} out={out_dim} g={groups}");
            let mut layer = GroupedLinear::new(in_dim, out_dim, groups, true, 4000);
            let n_w = groups * (out_dim / groups) * (in_dim / groups);
            layer.debug_set_shadow_weights(&shadows_at_density(n_w, density));
            let w_eff = layer.effective_weights();
            assert_eq!(pcnn_eedn::trinary::density(&w_eff), density, "{tag}: crafted density");
            let input = rand_tensor(&mut rng, &[3, in_dim]);
            let (_, out_ref) =
                grouped_linear_forward(&layer.spec(), &w_eff, layer.alpha(), layer.bias(), &input);
            let inf = layer.infer(&input);
            assert_bits_eq(inf.data(), out_ref.data(), &format!("{tag}: infer"));
            let fwd = layer.forward(&input, false);
            assert_bits_eq(inf.data(), fwd.data(), &format!("{tag}: infer vs f32"));
        }
    }
}

/// Forcing the scalar fallback via `PCNN_KERNEL_BACKEND` must win over
/// hardware detection, and the scalar kernels must agree bit-for-bit
/// with whatever SIMD backend the CPU offers — on both the f32 and the
/// trinary path. (Explicit-backend entry points are used for the
/// comparison because the process-wide selection is cached on first
/// kernel use; `crates/kernels/tests/dispatch_env.rs` covers the cached
/// global in a single-test binary.)
#[test]
fn forced_scalar_dispatch_agrees_with_simd() {
    use pcnn_kernels::SimdBackend;
    std::env::set_var("PCNN_KERNEL_BACKEND", "scalar");
    assert_eq!(pcnn_kernels::detect_backend(), SimdBackend::Scalar, "env override must win");
    std::env::remove_var("PCNN_KERNEL_BACKEND");
    let hw = pcnn_kernels::detect_backend();

    let mut rng = SmallRng::seed_from_u64(0xd15_0e0);
    let (m, k, n) = (13, 97, 29);
    let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-1.0..1.0f32)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-1.0..1.0f32)).collect();
    let mut s = pcnn_kernels::GemmScratch::default();
    let mut c_scalar = vec![0.0f32; m * n];
    pcnn_kernels::gemm_with_backend(
        SimdBackend::Scalar,
        &mut s,
        m,
        k,
        n,
        &a,
        k,
        &b,
        n,
        &mut c_scalar,
        n,
    );
    let mut c_hw = vec![0.0f32; m * n];
    pcnn_kernels::gemm_with_backend(hw, &mut s, m, k, n, &a, k, &b, n, &mut c_hw, n);
    assert_bits_eq(&c_hw, &c_scalar, "f32 scalar vs simd");

    let wtri: Vec<f32> =
        shadows_at_density(m * k, 0.5).iter().map(|&v| pcnn_eedn::trinary::trinarize(v)).collect();
    let mut tm = pcnn_kernels::TrinaryMatrix::default();
    tm.pack(&wtri, k, m, k);
    let mut t_scalar = vec![0.0f32; m * n];
    pcnn_kernels::gemm_trinary_with_backend(SimdBackend::Scalar, &tm, n, &b, n, &mut t_scalar, n);
    let mut t_hw = vec![0.0f32; m * n];
    pcnn_kernels::gemm_trinary_with_backend(hw, &tm, n, &b, n, &mut t_hw, n);
    assert_bits_eq(&t_hw, &t_scalar, "trinary scalar vs simd");
}

#[test]
fn repeated_backward_accumulates_like_reference() {
    // Gradients accumulate across minibatches until `step`; the kernel
    // path must extend the running sums exactly like the naive loops.
    // Three backward calls on batch-2 inputs add terms in the same order
    // as one naive pass over the concatenated batch-6 input, so the
    // comparison is still bitwise.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut layer = Conv2d::new(4, 6, 3, 1, 1, 2, true, 99);
    let w_eff = layer.effective_weights();
    let spec = layer.spec();
    let mut all_inputs = Vec::new();
    let mut all_grads = Vec::new();
    for _ in 0..3 {
        let input = rand_tensor(&mut rng, &[2, 4, 6, 5]);
        let go = rand_grad(&mut rng, &[2, 6, 6, 5]);
        layer.forward(&input, true);
        layer.backward(&go);
        all_inputs.extend_from_slice(input.data());
        all_grads.extend_from_slice(go.data());
    }
    let big_in = Tensor::from_vec(&[6, 4, 6, 5], all_inputs);
    let big_go = Tensor::from_vec(&[6, 6, 6, 5], all_grads);
    let (big_pre, _) = conv2d_forward(&spec, &w_eff, layer.alpha(), layer.bias(), &big_in);
    let gref = conv2d_backward(&spec, &w_eff, layer.alpha(), &big_in, &big_pre, &big_go);
    let (gw, ga, gb) = layer.debug_grads();
    assert_bits_eq(gw, &gref.gw, "accumulated gw");
    assert_bits_eq(ga, &gref.galpha, "accumulated galpha");
    assert_bits_eq(gb, &gref.gbias, "accumulated gbias");
}
