//! Randomized tests for the training framework's invariants, driven by
//! seeded `rand` sampling over many cases per property.

use pcnn_eedn::activation::{HardSigmoid, Threshold};
use pcnn_eedn::fc::GroupedLinear;
use pcnn_eedn::layer::Layer;
use pcnn_eedn::permute::Permute;
use pcnn_eedn::tensor::Tensor;
use pcnn_eedn::trinary::{clip_shadow, density, trinarize};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn vec_in(rng: &mut SmallRng, lo: f32, hi: f32, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

#[test]
fn trinarize_is_in_the_set() {
    let mut rng = SmallRng::seed_from_u64(0xEE_01);
    for _ in 0..512 {
        let w = rng.random_range(-5.0..5.0f32);
        let t = trinarize(w);
        assert!(t == -1.0 || t == 0.0 || t == 1.0);
        // Sign is preserved outside the dead zone.
        if w.abs() >= 0.5 {
            assert_eq!(t.signum(), w.signum());
        }
    }
}

#[test]
fn clip_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0xEE_02);
    for _ in 0..512 {
        let w = rng.random_range(-10.0..10.0f32);
        let c = clip_shadow(w);
        assert!((-1.0..=1.0).contains(&c));
        assert_eq!(clip_shadow(c), c);
    }
}

#[test]
fn density_is_a_fraction() {
    let mut rng = SmallRng::seed_from_u64(0xEE_03);
    for _ in 0..64 {
        let n = rng.random_range(0..100usize);
        let ws = vec_in(&mut rng, -2.0, 2.0, n);
        let d = density(&ws);
        assert!((0.0..=1.0).contains(&d));
    }
}

#[test]
fn threshold_output_is_binary() {
    let mut rng = SmallRng::seed_from_u64(0xEE_04);
    for _ in 0..64 {
        let n = rng.random_range(1..64usize);
        let vals = vec_in(&mut rng, -3.0, 3.0, n);
        let mut act = Threshold::new();
        let y = act.forward(&Tensor::from_vec(&[1, n], vals), false);
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}

#[test]
fn hard_sigmoid_output_in_unit_interval() {
    let mut rng = SmallRng::seed_from_u64(0xEE_05);
    for _ in 0..64 {
        let n = rng.random_range(1..64usize);
        let vals = vec_in(&mut rng, -3.0, 3.0, n);
        let mut act = HardSigmoid::new();
        let y = act.forward(&Tensor::from_vec(&[1, n], vals), false);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn permute_backward_inverts_forward() {
    let mut rng = SmallRng::seed_from_u64(0xEE_06);
    for _ in 0..100 {
        let dim = rng.random_range(1..64usize);
        let seed = rng.random_range(0..100u64);
        let mut p = Permute::random(dim, seed);
        let x = Tensor::from_rows(&[(0..dim).map(|i| i as f32).collect()]);
        let y = p.forward(&x, true);
        let back = p.backward(&y);
        assert_eq!(back.data(), x.data());
    }
}

#[test]
fn tensor_reshape_preserves_data() {
    let mut rng = SmallRng::seed_from_u64(0xEE_07);
    for _ in 0..64 {
        let data = vec_in(&mut rng, -10.0, 10.0, 12);
        let t = Tensor::from_vec(&[3, 4], data.clone());
        let r = t.clone().reshape(&[2, 6]).reshape(&[12]).reshape(&[3, 4]);
        assert_eq!(r, t);
    }
}

#[test]
fn deployed_weights_always_trinary() {
    for seed in 0..200u64 {
        let layer = GroupedLinear::new(8, 4, 2, true, seed);
        for g in 0..2 {
            for o in 0..2 {
                for i in 0..4 {
                    let w = layer.deployed_weight(g, o, i);
                    assert!(w == -1.0 || w == 0.0 || w == 1.0);
                }
            }
        }
    }
}

#[test]
fn linear_layer_is_affine() {
    let mut rng = SmallRng::seed_from_u64(0xEE_08);
    for _ in 0..128 {
        let a = vec_in(&mut rng, -1.0, 1.0, 6);
        let b = vec_in(&mut rng, -1.0, 1.0, 6);
        // f(a) + f(b) - f(0) == f(a + b) for the (float) linear layer.
        let mut layer = GroupedLinear::new(6, 3, 1, false, 7);
        let f = |l: &mut GroupedLinear, v: &[f32]| -> Vec<f32> {
            l.forward(&Tensor::from_rows(&[v.to_vec()]), false).data().to_vec()
        };
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = f(&mut layer, &a);
        let fb = f(&mut layer, &b);
        let f0 = f(&mut layer, &[0.0; 6]);
        let fsum = f(&mut layer, &sum);
        for i in 0..3 {
            assert!((fa[i] + fb[i] - f0[i] - fsum[i]).abs() < 1e-4);
        }
    }
}

#[test]
fn infer_matches_inference_forward() {
    // The &self inference path must be bit-identical to forward(x, false)
    // — the contract the parallel serving runtime depends on.
    let mut rng = SmallRng::seed_from_u64(0xEE_09);
    for seed in 0..16u64 {
        let mut linear = GroupedLinear::new(8, 4, 2, seed % 2 == 0, seed);
        let mut act = HardSigmoid::new();
        let mut perm = Permute::random(8, seed);
        let x = Tensor::from_rows(&[vec_in(&mut rng, -2.0, 2.0, 8)]);
        assert_eq!(linear.infer(&x), linear.forward(&x, false));
        assert_eq!(act.infer(&x), act.forward(&x, false));
        assert_eq!(perm.infer(&x), perm.forward(&x, false));
    }
}
