//! Property-based tests for the training framework's invariants.

use pcnn_eedn::activation::{HardSigmoid, Threshold};
use pcnn_eedn::fc::GroupedLinear;
use pcnn_eedn::layer::Layer;
use pcnn_eedn::permute::Permute;
use pcnn_eedn::tensor::Tensor;
use pcnn_eedn::trinary::{clip_shadow, density, trinarize};
use proptest::prelude::*;

proptest! {
    #[test]
    fn trinarize_is_in_the_set(w in -5.0f32..5.0) {
        let t = trinarize(w);
        prop_assert!(t == -1.0 || t == 0.0 || t == 1.0);
        // Sign is preserved outside the dead zone.
        if w.abs() >= 0.5 {
            prop_assert_eq!(t.signum(), w.signum());
        }
    }

    #[test]
    fn clip_is_idempotent(w in -10.0f32..10.0) {
        let c = clip_shadow(w);
        prop_assert!((-1.0..=1.0).contains(&c));
        prop_assert_eq!(clip_shadow(c), c);
    }

    #[test]
    fn density_is_a_fraction(ws in prop::collection::vec(-2.0f32..2.0, 0..100)) {
        let d = density(&ws);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn threshold_output_is_binary(vals in prop::collection::vec(-3.0f32..3.0, 1..64)) {
        let n = vals.len();
        let mut act = Threshold::new();
        let y = act.forward(&Tensor::from_vec(&[1, n], vals), false);
        prop_assert!(y.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn hard_sigmoid_output_in_unit_interval(vals in prop::collection::vec(-3.0f32..3.0, 1..64)) {
        let n = vals.len();
        let mut act = HardSigmoid::new();
        let y = act.forward(&Tensor::from_vec(&[1, n], vals), false);
        prop_assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn permute_backward_inverts_forward(dim in 1usize..64, seed in 0u64..100) {
        let mut p = Permute::random(dim, seed);
        let x = Tensor::from_rows(&[(0..dim).map(|i| i as f32).collect()]);
        let y = p.forward(&x, true);
        let back = p.backward(&y);
        prop_assert_eq!(back.data(), x.data());
    }

    #[test]
    fn tensor_reshape_preserves_data(
        data in prop::collection::vec(-10.0f32..10.0, 12),
    ) {
        let t = Tensor::from_vec(&[3, 4], data.clone());
        let r = t.clone().reshape(&[2, 6]).reshape(&[12]).reshape(&[3, 4]);
        prop_assert_eq!(r, t);
    }

    #[test]
    fn deployed_weights_always_trinary(seed in 0u64..200) {
        let layer = GroupedLinear::new(8, 4, 2, true, seed);
        for g in 0..2 {
            for o in 0..2 {
                for i in 0..4 {
                    let w = layer.deployed_weight(g, o, i);
                    prop_assert!(w == -1.0 || w == 0.0 || w == 1.0);
                }
            }
        }
    }

    #[test]
    fn linear_layer_is_affine(
        a in prop::collection::vec(-1.0f32..1.0, 6),
        b in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        // f(a) + f(b) - f(0) == f(a + b) for the (float) linear layer.
        let mut layer = GroupedLinear::new(6, 3, 1, false, 7);
        let f = |l: &mut GroupedLinear, v: &[f32]| -> Vec<f32> {
            l.forward(&Tensor::from_rows(&[v.to_vec()]), false).data().to_vec()
        };
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = f(&mut layer, &a);
        let fb = f(&mut layer, &b);
        let f0 = f(&mut layer, &[0.0; 6]);
        let fsum = f(&mut layer, &sum);
        for i in 0..3 {
            prop_assert!((fa[i] + fb[i] - f0[i] - fsum[i]).abs() < 1e-4);
        }
    }
}
