//! Grouped 2-D convolution with optional trinary weights.
//!
//! Output channel `o` in group `g` sees only input channels of group `g`
//! — Eedn's partitioning of "layers and the corresponding filters into
//! multiple groups to ensure the filters are sized such that they can be
//! implemented using the 256×256 TrueNorth core crossbars". A per-channel
//! scale `α` and bias follow the convolution, exactly as in
//! [`GroupedLinear`](crate::fc::GroupedLinear).
//!
//! The compute path is `im2col` + blocked GEMM from `pcnn-kernels`. Per
//! the determinism contract (see [`crate::reference`]): forward outputs
//! and the `gw`/`galpha`/`gbias` gradients are bit-identical to the
//! naive loops; only `grad_in` is tolerance-bound, because `col2im`
//! reassociates its scatter sums.
//!
//! When the layer is trinary, [`Layer::infer_with`] routes through the
//! multiply-free `gemm_trinary` over bitplane-packed weights instead of
//! the f32 GEMM — bit-identical output (see `pcnn_kernels::trinary`),
//! and `ops` instead of `flops` in traces. Training (`forward_with` /
//! `backward_with`) stays on the f32 path, which needs the projected
//! weights in float form anyway.

use crate::init::trinary_uniform;
use crate::layer::Layer;
use crate::optimizer::adam_update;
use crate::reference::ConvSpec;
use crate::tensor::Tensor;
use crate::trinary::{clip_shadow, trinarize_into};
use pcnn_kernels::{
    col2im, gemm_abt, gemm_atb, gemm_prepacked, gemm_trinary, im2col, take_resized, take_zeroed,
    ConvGeom, Scratch,
};

/// A grouped 2-D convolution layer over `(batch, channels, h, w)` tensors.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    trinary: bool,
    /// Shadow weights `[out_ch][in_ch/groups][k][k]`, flattened.
    w: Vec<f32>,
    alpha: Vec<f32>,
    bias: Vec<f32>,
    gw: Vec<f32>,
    galpha: Vec<f32>,
    gbias: Vec<f32>,
    vw: Vec<f32>,
    valpha: Vec<f32>,
    vbias: Vec<f32>,
    sw: Vec<f32>,
    salpha: Vec<f32>,
    sbias: Vec<f32>,
    steps: u64,
    cached_input: Option<Tensor>,
    cached_pre: Option<Tensor>,
}

impl Conv2d {
    /// A new convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts, or any
    /// dimension is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the conv hyperparameter tuple
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        trinary: bool,
        seed: u64,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0 && stride > 0 && groups > 0);
        assert_eq!(in_ch % groups, 0, "groups must divide in_ch");
        assert_eq!(out_ch % groups, 0, "groups must divide out_ch");
        let icg = in_ch / groups;
        let n_w = out_ch * icg * k * k;
        let fan_in = icg * k * k;
        let w = if trinary {
            trinary_uniform(n_w, seed)
        } else {
            crate::init::he_uniform(n_w, fan_in, seed)
        };
        let alpha0 = if trinary { 1.0 / (fan_in as f32).sqrt() } else { 1.0 };
        Conv2d {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            groups,
            trinary,
            w,
            alpha: vec![alpha0; out_ch],
            bias: vec![0.0; out_ch],
            gw: vec![0.0; n_w],
            galpha: vec![0.0; out_ch],
            gbias: vec![0.0; out_ch],
            vw: vec![0.0; n_w],
            valpha: vec![0.0; out_ch],
            vbias: vec![0.0; out_ch],
            sw: vec![0.0; n_w],
            salpha: vec![0.0; out_ch],
            sbias: vec![0.0; out_ch],
            steps: 0,
            cached_input: None,
            cached_pre: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        self.spec().out_size(h, w)
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Stride in both dimensions.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding in both dimensions.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Whether weights deploy as trinary.
    pub fn is_trinary(&self) -> bool {
        self.trinary
    }

    /// The per-channel scale vector `α`.
    pub fn alpha(&self) -> &[f32] {
        &self.alpha
    }

    /// The per-channel bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// This layer's hyperparameters as a [`ConvSpec`] for the reference
    /// oracle.
    pub fn spec(&self) -> ConvSpec {
        ConvSpec {
            in_ch: self.in_ch,
            out_ch: self.out_ch,
            k: self.k,
            stride: self.stride,
            pad: self.pad,
            groups: self.groups,
        }
    }

    /// The weights the layer actually computes with — trinary-projected
    /// when the layer is trinary, the raw shadows otherwise.
    pub fn effective_weights(&self) -> Vec<f32> {
        if self.trinary {
            let mut out = vec![0.0f32; self.w.len()];
            trinarize_into(&self.w, &mut out);
            out
        } else {
            self.w.clone()
        }
    }

    /// Accumulated `(gw, galpha, gbias)` gradients, exposed for the
    /// kernel-equivalence tests.
    #[doc(hidden)]
    pub fn debug_grads(&self) -> (&[f32], &[f32], &[f32]) {
        (&self.gw, &self.galpha, &self.gbias)
    }

    /// Replaces the shadow weights, so the equivalence tests can force
    /// specific deployed densities.
    ///
    /// # Panics
    ///
    /// Panics if the length doesn't match the layer's weight count.
    #[doc(hidden)]
    pub fn debug_set_shadow_weights(&mut self, w: &[f32]) {
        assert_eq!(w.len(), self.w.len(), "weight count mismatch");
        self.w.copy_from_slice(w);
    }

    /// Packing geometry for one group over an `(h, w)` input.
    fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            channels: self.in_ch / self.groups,
            h,
            w,
            k: self.k,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// The pure forward computation: `(pre-scale, output)`.
    ///
    /// Per (group, sample): pack the group's weight matrix once, im2col
    /// the sample's group channels, then one GEMM
    /// `pre_g = W_g [ocg × icg·k²] · col [icg·k² × ho·wo]`.
    fn apply_with(&self, input: &Tensor, s: &mut Scratch) -> (Tensor, Tensor) {
        assert_eq!(input.shape().len(), 4, "Conv2d takes (batch, channels, h, w)");
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!(cin, self.in_ch, "input channel mismatch");
        let (ho, wo) = self.out_size(h, w);
        let icg = self.in_ch / self.groups;
        let ocg = self.out_ch / self.groups;
        let geom = self.geom(h, w);
        let krows = icg * self.k * self.k;
        let cols = ho * wo;
        let mut pre = Tensor::zeros(&[batch, self.out_ch, ho, wo]);
        let Scratch { gemm, col, wbuf, wpack, .. } = s;
        let w_eff: &[f32] = if self.trinary {
            let wb = take_zeroed(wbuf, self.w.len());
            trinarize_into(&self.w, wb);
            wb
        } else {
            &self.w
        };
        for g in 0..self.groups {
            wpack.pack(&w_eff[g * ocg * krows..], krows, ocg, krows);
            for n in 0..batch {
                im2col(&geom, input.channels(n, g * icg, icg), take_zeroed(col, krows * cols));
                let cslice =
                    &mut pre.data_mut()[(n * self.out_ch + g * ocg) * cols..][..ocg * cols];
                gemm_prepacked(gemm, wpack, cols, col, cols, cslice, cols);
            }
        }
        let out = self.scale_pre(&pre, batch, cols);
        (pre, out)
    }

    /// Applies the per-channel `α`/bias affine to a pre-scale tensor.
    fn scale_pre(&self, pre: &Tensor, batch: usize, cols: usize) -> Tensor {
        let mut out = Tensor::zeros(pre.shape());
        for n in 0..batch {
            for o in 0..self.out_ch {
                let base = (n * self.out_ch + o) * cols;
                let (a, b) = (self.alpha[o], self.bias[o]);
                let prow = &pre.data()[base..base + cols];
                let orow = &mut out.data_mut()[base..base + cols];
                for (ov, pv) in orow.iter_mut().zip(prow) {
                    *ov = a * pv + b;
                }
            }
        }
        out
    }

    /// [`Self::scale_pre`] applied in place, for inference where the
    /// unscaled pre-activation is not kept. Same arithmetic per
    /// element, so bit-identical to the copying form.
    fn scale_pre_in_place(&self, pre: &mut Tensor, batch: usize, cols: usize) {
        for n in 0..batch {
            for o in 0..self.out_ch {
                let base = (n * self.out_ch + o) * cols;
                let (a, b) = (self.alpha[o], self.bias[o]);
                for v in &mut pre.data_mut()[base..base + cols] {
                    *v = a * *v + b;
                }
            }
        }
    }

    /// The multiply-free inference path: weights bitplane-packed once
    /// per group, each sample's column matrix consumed by
    /// `gemm_trinary`. Bit-identical to [`Self::apply_with`] on a
    /// trinary layer (the ascending-column bit walk reproduces the
    /// im2col row order the f32 GEMM accumulates in).
    fn infer_trinary_with(&self, input: &Tensor, s: &mut Scratch) -> Tensor {
        assert!(self.trinary, "trinary path on a float layer");
        assert_eq!(input.shape().len(), 4, "Conv2d takes (batch, channels, h, w)");
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!(cin, self.in_ch, "input channel mismatch");
        let (ho, wo) = self.out_size(h, w);
        let icg = self.in_ch / self.groups;
        let ocg = self.out_ch / self.groups;
        let geom = self.geom(h, w);
        let krows = icg * self.k * self.k;
        let cols = ho * wo;
        let mut pre = Tensor::zeros(&[batch, self.out_ch, ho, wo]);
        let Scratch { col, wbuf, wtri, .. } = s;
        // Both scratch targets are fully overwritten (trinarize_into
        // and im2col write every element), so plain resizes avoid two
        // wasted zeroing passes per call.
        let wb = take_resized(wbuf, self.w.len());
        trinarize_into(&self.w, wb);
        for g in 0..self.groups {
            wtri.pack(&wb[g * ocg * krows..][..ocg * krows], krows, ocg, krows);
            for n in 0..batch {
                im2col(&geom, input.channels(n, g * icg, icg), take_resized(col, krows * cols));
                let cslice =
                    &mut pre.data_mut()[(n * self.out_ch + g * ocg) * cols..][..ocg * cols];
                gemm_trinary(wtri, cols, col, cols, cslice, cols);
            }
        }
        self.scale_pre_in_place(&mut pre, batch, cols);
        pre
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut s = Scratch::default();
        self.forward_with(input, train, &mut s)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut s = Scratch::default();
        self.infer_with(input, &mut s)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut s = Scratch::default();
        self.backward_with(grad_out, &mut s)
    }

    fn forward_with(&mut self, input: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let (pre, out) = self.apply_with(input, scratch);
        if train {
            self.cached_input = Some(input.clone());
            self.cached_pre = Some(pre);
        }
        out
    }

    fn infer_with(&self, input: &Tensor, scratch: &mut Scratch) -> Tensor {
        if self.trinary {
            self.infer_trinary_with(input, scratch)
        } else {
            self.apply_with(input, scratch).1
        }
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward without training forward");
        let pre = self.cached_pre.as_ref().expect("missing pre cache");
        let (batch, _, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (ho, wo) = (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        );
        assert_eq!(grad_out.shape(), &[batch, self.out_ch, ho, wo], "grad shape mismatch");
        let icg = self.in_ch / self.groups;
        let ocg = self.out_ch / self.groups;
        let geom = ConvGeom { channels: icg, h, w, k: self.k, stride: self.stride, pad: self.pad };
        let krows = icg * self.k * self.k;
        let cols = ho * wo;
        let mut grad_in = Tensor::zeros(input.shape());
        let Scratch { gemm, col, dcol, wbuf, dbuf, .. } = scratch;
        let w_eff: &[f32] = if self.trinary {
            let wb = take_zeroed(wbuf, self.w.len());
            trinarize_into(&self.w, wb);
            wb
        } else {
            &self.w
        };
        for g in 0..self.groups {
            let wg = &w_eff[g * ocg * krows..][..ocg * krows];
            for n in 0..batch {
                // dα/db accumulate element-by-element in the naive
                // (oy, ox) order — running sums stay bit-identical —
                // while dbuf collects dy·α for the GEMMs below.
                let db = take_zeroed(dbuf, ocg * cols);
                for ol in 0..ocg {
                    let o = g * ocg + ol;
                    let base = (n * self.out_ch + o) * cols;
                    let grow = &grad_out.data()[base..base + cols];
                    let prow = &pre.data()[base..base + cols];
                    let a = self.alpha[o];
                    let mut ga = self.galpha[o];
                    let mut gb = self.gbias[o];
                    let drow = &mut db[ol * cols..][..cols];
                    for c in 0..cols {
                        let dy = grow[c];
                        ga += dy * prow[c];
                        gb += dy;
                        drow[c] = dy * a;
                    }
                    self.galpha[o] = ga;
                    self.gbias[o] = gb;
                }
                im2col(&geom, input.channels(n, g * icg, icg), take_zeroed(col, krows * cols));
                // gw_g += dbuf · colᵀ, running sums extended across the
                // batch in sample order (bit-identical to naive).
                let gwg = &mut self.gw[g * ocg * krows..][..ocg * krows];
                gemm_abt(gemm, ocg, cols, krows, db, cols, col, cols, gwg, krows);
                // dcol = W_gᵀ · dbuf, scattered back by col2im. This is
                // the one reassociated sum — grad_in is tolerance-bound.
                let dc = take_zeroed(dcol, krows * cols);
                gemm_atb(gemm, krows, ocg, cols, wg, krows, db, cols, dc, cols);
                col2im(&geom, dc, grad_in.channels_mut(n, g * icg, icg));
            }
        }
        grad_in
    }

    fn step(&mut self, lr: f32, momentum: f32) {
        // Adam (`momentum` = beta1) — see GroupedLinear::step for why.
        self.steps += 1;
        let t = self.steps;
        adam_update(&mut self.w, &mut self.gw, &mut self.vw, &mut self.sw, lr, momentum, t);
        if self.trinary {
            for w in &mut self.w {
                *w = clip_shadow(*w);
            }
        }
        adam_update(
            &mut self.alpha,
            &mut self.galpha,
            &mut self.valpha,
            &mut self.salpha,
            lr,
            momentum,
            t,
        );
        adam_update(
            &mut self.bias,
            &mut self.gbias,
            &mut self.vbias,
            &mut self.sbias,
            lr,
            momentum,
            t,
        );
    }

    fn name(&self) -> &str {
        if self.trinary {
            "conv2d-trinary"
        } else {
            "conv2d"
        }
    }

    fn span_label(&self) -> &'static str {
        "eedn.conv"
    }

    fn parameter_count(&self) -> usize {
        self.w.len() + self.alpha.len() + self.bias.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 1, false, 1);
        conv.w = vec![1.0];
        conv.alpha = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn out_size_math() {
        let conv = Conv2d::new(1, 1, 3, 2, 1, 1, false, 1);
        assert_eq!(conv.out_size(8, 8), (4, 4));
        let conv = Conv2d::new(1, 1, 3, 1, 0, 1, false, 1);
        assert_eq!(conv.out_size(8, 8), (6, 6));
    }

    #[test]
    fn box_filter_sums_window() {
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 1, false, 2);
        conv.w = vec![1.0; 4];
        conv.alpha = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.0);
    }

    #[test]
    fn padding_extends_with_zeros() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 1, false, 3);
        conv.w = vec![1.0; 9];
        conv.alpha = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 5.0, "zero padding contributes nothing");
    }

    #[test]
    fn groups_do_not_mix_channels() {
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, 2, false, 4);
        conv.w = vec![1.0, 1.0];
        conv.alpha = vec![1.0, 1.0];
        conv.bias = vec![0.0, 0.0];
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 7.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 7.0]);
    }

    #[test]
    fn gradient_check_float() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 1, false, 5);
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| (i as f32 * 0.13).sin()).collect());
        let y = conv.forward(&x, true);
        let grad_out = y.clone();
        let grad_in = conv.backward(&grad_out);
        let loss = |c: &mut Conv2d, x: &Tensor| -> f32 {
            let y = c.forward(x, false);
            y.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };
        let eps = 1e-3;
        for j in [0usize, 5, 9, 15] {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let mut xm = x.clone();
            xm.data_mut()[j] -= eps;
            let num = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            let ana = grad_in.data()[j];
            assert!((num - ana).abs() < 1e-2, "pixel {j}: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn trinary_conv_training_converges() {
        // Trinary conv regression: fit a fixed random target map. Tests
        // that STE shadow gradients plus the alpha/bias path actually
        // optimize under the {-1,0,1} constraint.
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 1, true, 6);
        let x = Tensor::from_vec(
            &[1, 1, 6, 6],
            (0..36).map(|i| ((i as f32) * 0.37).sin() * 0.5 + 0.5).collect(),
        );
        let target = Tensor::from_vec(
            &[1, 2, 6, 6],
            (0..72).map(|i| ((i as f32) * 0.11).cos() * 0.3).collect(),
        );
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            let y = conv.forward(&x, true);
            let (loss, grad) = crate::loss::mse_loss(&y, &target);
            conv.backward(&grad);
            conv.step(0.05, 0.9);
            first.get_or_insert(loss);
            last = loss;
        }
        // The {-1,0,1} constraint leaves a representational floor; halving
        // the initial loss shows the optimizer is working.
        assert!(last < first.unwrap() * 0.6, "trinary conv loss {:?} -> {last}", first);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // The same layer driven through one reused Scratch and through
        // fresh ones must produce identical bits.
        let conv = Conv2d::new(4, 4, 3, 1, 1, 2, true, 7);
        let x =
            Tensor::from_vec(&[2, 4, 5, 5], (0..200).map(|i| ((i as f32) * 0.17).sin()).collect());
        let mut s = Scratch::default();
        for _ in 0..3 {
            let with = conv.infer_with(&x, &mut s);
            let plain = conv.infer(&x);
            assert_eq!(with, plain);
        }
    }
}
