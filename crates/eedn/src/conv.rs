//! Grouped 2-D convolution with optional trinary weights.
//!
//! Output channel `o` in group `g` sees only input channels of group `g`
//! — Eedn's partitioning of "layers and the corresponding filters into
//! multiple groups to ensure the filters are sized such that they can be
//! implemented using the 256×256 TrueNorth core crossbars". A per-channel
//! scale `α` and bias follow the convolution, exactly as in
//! [`GroupedLinear`](crate::fc::GroupedLinear).

use crate::init::trinary_uniform;
use crate::layer::Layer;
use crate::optimizer::adam_update;
use crate::tensor::Tensor;
use crate::trinary::{clip_shadow, trinarize};

/// A grouped 2-D convolution layer over `(batch, channels, h, w)` tensors.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    trinary: bool,
    /// Shadow weights `[out_ch][in_ch/groups][k][k]`, flattened.
    w: Vec<f32>,
    alpha: Vec<f32>,
    bias: Vec<f32>,
    gw: Vec<f32>,
    galpha: Vec<f32>,
    gbias: Vec<f32>,
    vw: Vec<f32>,
    valpha: Vec<f32>,
    vbias: Vec<f32>,
    sw: Vec<f32>,
    salpha: Vec<f32>,
    sbias: Vec<f32>,
    steps: u64,
    cached_input: Option<Tensor>,
    cached_pre: Option<Tensor>,
}

impl Conv2d {
    /// A new convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts, or any
    /// dimension is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the conv hyperparameter tuple
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        trinary: bool,
        seed: u64,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0 && stride > 0 && groups > 0);
        assert_eq!(in_ch % groups, 0, "groups must divide in_ch");
        assert_eq!(out_ch % groups, 0, "groups must divide out_ch");
        let icg = in_ch / groups;
        let n_w = out_ch * icg * k * k;
        let fan_in = icg * k * k;
        let w = if trinary {
            trinary_uniform(n_w, seed)
        } else {
            crate::init::he_uniform(n_w, fan_in, seed)
        };
        let alpha0 = if trinary { 1.0 / (fan_in as f32).sqrt() } else { 1.0 };
        Conv2d {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            groups,
            trinary,
            w,
            alpha: vec![alpha0; out_ch],
            bias: vec![0.0; out_ch],
            gw: vec![0.0; n_w],
            galpha: vec![0.0; out_ch],
            gbias: vec![0.0; out_ch],
            vw: vec![0.0; n_w],
            valpha: vec![0.0; out_ch],
            vbias: vec![0.0; out_ch],
            sw: vec![0.0; n_w],
            salpha: vec![0.0; out_ch],
            sbias: vec![0.0; out_ch],
            steps: 0,
            cached_input: None,
            cached_pre: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Whether weights deploy as trinary.
    pub fn is_trinary(&self) -> bool {
        self.trinary
    }

    #[inline]
    fn eff_w(&self, idx: usize) -> f32 {
        if self.trinary {
            trinarize(self.w[idx])
        } else {
            self.w[idx]
        }
    }

    #[inline]
    fn widx(&self, o: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((o * (self.in_ch / self.groups) + ic) * self.k + ky) * self.k + kx
    }

    /// The pure forward computation: `(pre-scale, output)`.
    fn apply(&self, input: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(input.shape().len(), 4, "Conv2d takes (batch, channels, h, w)");
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        assert_eq!(cin, self.in_ch, "input channel mismatch");
        let (ho, wo) = self.out_size(h, w);
        let icg = self.in_ch / self.groups;
        let ocg = self.out_ch / self.groups;
        let mut pre = Tensor::zeros(&[batch, self.out_ch, ho, wo]);
        for n in 0..batch {
            for g in 0..self.groups {
                for ol in 0..ocg {
                    let o = g * ocg + ol;
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let mut acc = 0.0;
                            for ic in 0..icg {
                                let c = g * icg + ic;
                                for ky in 0..self.k {
                                    let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..self.k {
                                        let ix =
                                            (ox * self.stride + kx) as isize - self.pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        acc += self.eff_w(self.widx(o, ic, ky, kx))
                                            * input.at4(n, c, iy as usize, ix as usize);
                                    }
                                }
                            }
                            *pre.at4_mut(n, o, oy, ox) = acc;
                        }
                    }
                }
            }
        }
        let mut out = pre.clone();
        for n in 0..batch {
            for o in 0..self.out_ch {
                for oy in 0..ho {
                    for ox in 0..wo {
                        *out.at4_mut(n, o, oy, ox) =
                            self.alpha[o] * pre.at4(n, o, oy, ox) + self.bias[o];
                    }
                }
            }
        }
        (pre, out)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (pre, out) = self.apply(input);
        if train {
            self.cached_input = Some(input.clone());
            self.cached_pre = Some(pre);
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.apply(input).1
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward without training forward");
        let pre = self.cached_pre.as_ref().expect("missing pre cache");
        let (batch, _, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (ho, wo) = self.out_size(h, w);
        assert_eq!(grad_out.shape(), &[batch, self.out_ch, ho, wo], "grad shape mismatch");
        let icg = self.in_ch / self.groups;
        let ocg = self.out_ch / self.groups;
        let mut grad_in = Tensor::zeros(input.shape());
        for n in 0..batch {
            for g in 0..self.groups {
                for ol in 0..ocg {
                    let o = g * ocg + ol;
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let dy = grad_out.at4(n, o, oy, ox);
                            if dy == 0.0 {
                                continue;
                            }
                            self.galpha[o] += dy * pre.at4(n, o, oy, ox);
                            self.gbias[o] += dy;
                            let da = dy * self.alpha[o];
                            for ic in 0..icg {
                                let c = g * icg + ic;
                                for ky in 0..self.k {
                                    let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..self.k {
                                        let ix =
                                            (ox * self.stride + kx) as isize - self.pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let wi = self.widx(o, ic, ky, kx);
                                        self.gw[wi] +=
                                            da * input.at4(n, c, iy as usize, ix as usize);
                                        *grad_in.at4_mut(n, c, iy as usize, ix as usize) +=
                                            da * self.eff_w(wi);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn step(&mut self, lr: f32, momentum: f32) {
        // Adam (`momentum` = beta1) — see GroupedLinear::step for why.
        self.steps += 1;
        let t = self.steps;
        adam_update(&mut self.w, &mut self.gw, &mut self.vw, &mut self.sw, lr, momentum, t);
        if self.trinary {
            for w in &mut self.w {
                *w = clip_shadow(*w);
            }
        }
        adam_update(
            &mut self.alpha,
            &mut self.galpha,
            &mut self.valpha,
            &mut self.salpha,
            lr,
            momentum,
            t,
        );
        adam_update(
            &mut self.bias,
            &mut self.gbias,
            &mut self.vbias,
            &mut self.sbias,
            lr,
            momentum,
            t,
        );
    }

    fn name(&self) -> &str {
        if self.trinary {
            "conv2d-trinary"
        } else {
            "conv2d"
        }
    }

    fn parameter_count(&self) -> usize {
        self.w.len() + self.alpha.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 1, false, 1);
        conv.w = vec![1.0];
        conv.alpha = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn out_size_math() {
        let conv = Conv2d::new(1, 1, 3, 2, 1, 1, false, 1);
        assert_eq!(conv.out_size(8, 8), (4, 4));
        let conv = Conv2d::new(1, 1, 3, 1, 0, 1, false, 1);
        assert_eq!(conv.out_size(8, 8), (6, 6));
    }

    #[test]
    fn box_filter_sums_window() {
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 1, false, 2);
        conv.w = vec![1.0; 4];
        conv.alpha = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.0);
    }

    #[test]
    fn padding_extends_with_zeros() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 1, false, 3);
        conv.w = vec![1.0; 9];
        conv.alpha = vec![1.0];
        conv.bias = vec![0.0];
        let x = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 5.0, "zero padding contributes nothing");
    }

    #[test]
    fn groups_do_not_mix_channels() {
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, 2, false, 4);
        conv.w = vec![1.0, 1.0];
        conv.alpha = vec![1.0, 1.0];
        conv.bias = vec![0.0, 0.0];
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 7.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 7.0]);
    }

    #[test]
    fn gradient_check_float() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 1, false, 5);
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| (i as f32 * 0.13).sin()).collect());
        let y = conv.forward(&x, true);
        let grad_out = y.clone();
        let grad_in = conv.backward(&grad_out);
        let loss = |c: &mut Conv2d, x: &Tensor| -> f32 {
            let y = c.forward(x, false);
            y.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };
        let eps = 1e-3;
        for j in [0usize, 5, 9, 15] {
            let mut xp = x.clone();
            xp.data_mut()[j] += eps;
            let mut xm = x.clone();
            xm.data_mut()[j] -= eps;
            let num = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            let ana = grad_in.data()[j];
            assert!((num - ana).abs() < 1e-2, "pixel {j}: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn trinary_conv_training_converges() {
        // Trinary conv regression: fit a fixed random target map. Tests
        // that STE shadow gradients plus the alpha/bias path actually
        // optimize under the {-1,0,1} constraint.
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 1, true, 6);
        let x = Tensor::from_vec(
            &[1, 1, 6, 6],
            (0..36).map(|i| ((i as f32) * 0.37).sin() * 0.5 + 0.5).collect(),
        );
        let target = Tensor::from_vec(
            &[1, 2, 6, 6],
            (0..72).map(|i| ((i as f32) * 0.11).cos() * 0.3).collect(),
        );
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            let y = conv.forward(&x, true);
            let (loss, grad) = crate::loss::mse_loss(&y, &target);
            conv.backward(&grad);
            conv.step(0.05, 0.9);
            first.get_or_insert(loss);
            last = loss;
        }
        // The {-1,0,1} constraint leaves a representational floor; halving
        // the initial loss shows the optimizer is working.
        assert!(last < first.unwrap() * 0.6, "trinary conv loss {:?} -> {last}", first);
    }
}
