//! Eedn-style constrained network training.
//!
//! Eedn ("energy-efficient deep neuromorphic network", Esser et al. 2016)
//! is the TrueNorth-specific CNN methodology the paper uses for both its
//! classifiers and the Parrot feature extractor. Its defining constraints,
//! all honoured here:
//!
//! * **Trinary deployment weights** — layers keep high-precision shadow
//!   weights during training but run with weights projected onto
//!   `{-1, 0, 1}`; gradients flow to the shadows straight-through
//!   ([`trinary`]).
//! * **Spiking neurons** — hardware neurons emit binary events; their
//!   threshold activation has no usable derivative, so training uses a
//!   surrogate. Two activations are provided: [`activation::Threshold`]
//!   (binary with a straight-through triangle surrogate, Eedn's choice)
//!   and [`activation::HardSigmoid`] (the exact *expected rate* of a
//!   linear-reset integrator neuron under rate coding, used for networks
//!   that are subsequently deployed onto the simulator).
//! * **Crossbar-sized groups** — every layer partitions its filters into
//!   groups whose fan-in and fan-out fit a 256×256 crossbar (with the
//!   positive/negative axon-duplication factor), checked and costed by
//!   [`mapping`].
//!
//! The framework itself is a minimal but complete backprop stack: tensors
//! ([`tensor`]), grouped fully-connected and convolutional layers
//! ([`fc`], [`conv`]), pooling ([`pool`]), fixed permutations for
//! inter-group mixing ([`permute`]), losses ([`loss`]), SGD with momentum
//! (inside each layer's [`layer::Layer::step`]), sequential
//! composition and training loops ([`network`]), and batched datasets
//! ([`data`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod data;
pub mod fc;
pub mod init;
pub mod layer;
pub mod loss;
pub mod mapping;
pub mod network;
pub mod optimizer;
pub mod permute;
pub mod pool;
pub mod reference;
pub mod replicate;
pub mod tensor;
pub mod trinary;

pub use activation::{HardSigmoid, Relu, Threshold};
pub use conv::Conv2d;
pub use data::Dataset;
pub use fc::GroupedLinear;
pub use layer::Layer;
pub use loss::{mse_loss, softmax_cross_entropy};
pub use mapping::{check_crossbar_fit, network_core_count, CoreCost};
pub use network::Sequential;
pub use pcnn_kernels::Scratch;
pub use pool::{AvgPool2, MaxPool2};
pub use replicate::Replicate;
pub use tensor::Tensor;
