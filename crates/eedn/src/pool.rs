//! Spatial pooling layers.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2×2 max pooling with stride 2.
///
/// Max pooling is cheap on TrueNorth — an OR across spikes — which is why
/// the NApprox pipeline of Figure 1 uses it after the gradient stage.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    /// Cached argmax indices (flat, into the input) per output element.
    argmax: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2 {
    /// A new 2×2 max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pure pooling computation: `(output, argmax indices)`.
    fn pool(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        assert_eq!(input.shape().len(), 4, "MaxPool2 takes (batch, channels, h, w)");
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (ho, wo) = (h / 2, w / 2);
        assert!(ho > 0 && wo > 0, "input too small to pool");
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut arg = Vec::with_capacity(n * c * ho * wo);
        // Slice-based sweep: two input rows per output row, candidates
        // visited in the same (dy, dx) order (strict `>`) as the scalar
        // loops this replaced, so argmax ties break identically.
        let idata = input.data();
        let odata = out.data_mut();
        for plane in 0..n * c {
            let pbase = plane * h * w;
            for oy in 0..ho {
                let r0 = pbase + (oy * 2) * w;
                let r1 = r0 + w;
                let orow = &mut odata[(plane * ho + oy) * wo..][..wo];
                for (ox, ov) in orow.iter_mut().enumerate() {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_flat = 0;
                    for flat in [r0 + 2 * ox, r0 + 2 * ox + 1, r1 + 2 * ox, r1 + 2 * ox + 1] {
                        let v = idata[flat];
                        if v > best {
                            best = v;
                            best_flat = flat;
                        }
                    }
                    *ov = best;
                    arg.push(best_flat);
                }
            }
        }
        (out, arg)
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, arg) = self.pool(input);
        if train {
            self.argmax = Some((arg, input.shape().to_vec()));
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.pool(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, in_shape) = self.argmax.as_ref().expect("backward without training forward");
        assert_eq!(arg.len(), grad_out.len(), "grad shape mismatch");
        let mut grad_in = Tensor::zeros(in_shape);
        for (g, &flat) in grad_out.data().iter().zip(arg) {
            grad_in.data_mut()[flat] += g;
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "maxpool2"
    }

    fn span_label(&self) -> &'static str {
        "eedn.pool"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// 2×2 average pooling with stride 2.
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    in_shape: Option<Vec<usize>>,
}

impl AvgPool2 {
    /// A new 2×2 average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for AvgPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = Some(input.shape().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 4, "AvgPool2 takes (batch, channels, h, w)");
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (ho, wo) = (h / 2, w / 2);
        assert!(ho > 0 && wo > 0, "input too small to pool");
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        // Slice-based sweep; summation order matches the scalar loops
        // this replaced ((dy, dx) row-major), so results are identical.
        let idata = input.data();
        let odata = out.data_mut();
        for plane in 0..n * c {
            let pbase = plane * h * w;
            for oy in 0..ho {
                let r0 = &idata[pbase + (oy * 2) * w..][..w];
                let r1 = &idata[pbase + (oy * 2 + 1) * w..][..w];
                let orow = &mut odata[(plane * ho + oy) * wo..][..wo];
                for (ox, ov) in orow.iter_mut().enumerate() {
                    let acc = r0[2 * ox] + r0[2 * ox + 1] + r1[2 * ox] + r1[2 * ox + 1];
                    *ov = acc / 4.0;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_shape = self.in_shape.as_ref().expect("backward without training forward");
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let mut grad_in = Tensor::zeros(in_shape);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..h / 2 {
                    for ox in 0..w / 2 {
                        let g = grad_out.at4(ni, ci, oy, ox) / 4.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                *grad_in.at4_mut(ni, ci, oy * 2 + dy, ox * 2 + dx) += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "avgpool2"
    }

    fn span_label(&self) -> &'static str {
        "eedn.pool"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maximum() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 5.0);
    }

    #[test]
    fn max_pool_gradient_routes_to_argmax() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]));
        assert_eq!(g.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let mut p = AvgPool2::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]);
        let y = p.forward(&x, false);
        assert_eq!(y.data()[0], 3.0);
    }

    #[test]
    fn avg_pool_gradient_spreads() {
        let mut p = AvgPool2::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn odd_sizes_truncate() {
        let mut p = MaxPool2::new();
        let x = Tensor::zeros(&[1, 1, 5, 7]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
    }
}
