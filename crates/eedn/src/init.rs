//! Seeded weight initialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform He-style initialization: `U(-b, b)` with `b = √(2 / fan_in)`,
/// clipped to the shadow range so trinary projection starts mixed.
pub fn he_uniform(n: usize, fan_in: usize, seed: u64) -> Vec<f32> {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (2.0 / fan_in as f32).sqrt().min(1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-bound..=bound)).collect()
}

/// Uniform initialization over `(-b, b)` for shadow weights destined for
/// trinary projection: a wide spread so a healthy fraction starts outside
/// the zero band.
pub fn trinary_uniform(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..=1.0f32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trinary::density;

    #[test]
    fn he_bound_scales_with_fan_in() {
        let w = he_uniform(1000, 800, 1);
        let bound = (2.0f32 / 800.0).sqrt();
        assert!(w.iter().all(|&v| v.abs() <= bound + 1e-6));
        assert!(w.iter().any(|&v| v.abs() > bound * 0.5));
    }

    #[test]
    fn deterministic() {
        assert_eq!(he_uniform(10, 4, 7), he_uniform(10, 4, 7));
        assert_ne!(he_uniform(10, 4, 7), he_uniform(10, 4, 8));
    }

    #[test]
    fn trinary_init_is_mixed() {
        let w = trinary_uniform(1000, 2);
        let d = density(&w);
        assert!(d > 0.3 && d < 0.7, "initial trinary density {d}");
    }
}
