//! Loss functions with analytic gradients.

use crate::tensor::Tensor;

/// Softmax cross-entropy over rank-2 logits.
///
/// Returns `(mean loss, ∂loss/∂logits)`.
///
/// # Panics
///
/// Panics if shapes mismatch or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be (batch, classes)");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch, "label count mismatch");
    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut loss = 0.0f32;
    for (n, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        let row = logits.row(n);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        loss -= (exps[label] / z).max(1e-12).ln();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / z;
            *grad.at2_mut(n, c) = (p - if c == label { 1.0 } else { 0.0 }) / batch as f32;
        }
    }
    (loss / batch as f32, grad)
}

/// Mean squared error against rank-2 targets.
///
/// Returns `(mean loss, ∂loss/∂pred)`.
///
/// # Panics
///
/// Panics if shapes mismatch.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Normalized cross-entropy between a predicted non-negative vector and a
/// target non-negative vector, both renormalized to distributions — the
/// "distribution of confidence scores matching the HoG histograms"
/// objective the Parrot training cares about. Returns `(loss, ∂loss/∂pred)`.
///
/// # Panics
///
/// Panics if shapes mismatch.
pub fn distribution_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    // Implemented as MSE between L1-normalized rows: simple, smooth, and
    // exactly what "the distribution matters more than the argmax" needs.
    assert_eq!(pred.shape(), target.shape(), "distribution shape mismatch");
    assert_eq!(pred.shape().len(), 2);
    let (batch, dim) = (pred.shape()[0], pred.shape()[1]);
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f32;
    for n in 0..batch {
        let ps = pred.row(n);
        let ts = target.row(n);
        let psum: f32 = ps.iter().map(|v| v.max(0.0)).sum::<f32>() + 1e-6;
        let tsum: f32 = ts.iter().map(|v| v.max(0.0)).sum::<f32>() + 1e-6;
        for d in 0..dim {
            let pn = ps[d].max(0.0) / psum;
            let tn = ts[d].max(0.0) / tsum;
            let diff = pn - tn;
            loss += diff * diff;
            // d(pn_d)/d(ps_j) = (delta_dj * psum - ps_d) / psum^2; the
            // diagonal term dominates — use it (exact enough for SGD and
            // keeps the loss O(dim) per row).
            if ps[d] > 0.0 {
                *grad.at2_mut(n, d) =
                    2.0 * diff * (psum - ps[d].max(0.0)) / (psum * psum) / batch as f32;
            }
        }
    }
    (loss / batch as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_perfect_prediction_low_loss() {
        let logits = Tensor::from_rows(&[vec![10.0, -10.0], vec![-10.0, 10.0]]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6, "loss {loss}");
        assert!(grad.data().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn ce_uniform_logits_log_classes() {
        let logits = Tensor::from_rows(&[vec![0.0; 4]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_points_downhill() {
        let logits = Tensor::from_rows(&[vec![0.5, -0.5, 0.1]]);
        let (l0, grad) = softmax_cross_entropy(&logits, &[1]);
        let step = 0.1;
        let moved = Tensor::from_rows(&[vec![
            0.5 - step * grad.at2(0, 0),
            -0.5 - step * grad.at2(0, 1),
            0.1 - step * grad.at2(0, 2),
        ]]);
        let (l1, _) = softmax_cross_entropy(&moved, &[1]);
        assert!(l1 < l0);
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_rows(&[vec![1.0, 2.0]]);
        let t = Tensor::from_rows(&[vec![0.0, 2.0]]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 0.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 0.0]);
    }

    #[test]
    fn distribution_loss_zero_for_proportional() {
        // Scaled versions of the same histogram are the same distribution.
        let p = Tensor::from_rows(&[vec![2.0, 4.0, 6.0]]);
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let (loss, _) = distribution_loss(&p, &t);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn distribution_loss_decreases_under_gradient() {
        let mut p = Tensor::from_rows(&[vec![1.0, 1.0, 1.0]]);
        let t = Tensor::from_rows(&[vec![3.0, 1.0, 0.5]]);
        let (mut prev, _) = distribution_loss(&p, &t);
        for _ in 0..50 {
            let (l, g) = distribution_loss(&p, &t);
            for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                *pv -= 2.0 * gv;
            }
            prev = l;
        }
        let (fin, _) = distribution_loss(&p, &t);
        assert!(fin <= prev);
        assert!(fin < 0.02, "final distribution loss {fin}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        softmax_cross_entropy(&Tensor::from_rows(&[vec![0.0, 0.0]]), &[2]);
    }
}
