//! Grouped fully-connected layers with optional trinary weights.
//!
//! A grouped linear layer splits its inputs and outputs into `groups`
//! contiguous blocks and connects them block-diagonally, so each output
//! only sees `in_dim / groups` inputs — the Eedn trick that makes every
//! block fit a 256×256 crossbar. A per-output scale `α` (folded into the
//! hardware neuron threshold at deployment) and bias restore dynamic
//! range lost to the `{-1, 0, 1}` weight constraint:
//!
//! ```text
//! y = α ⊙ (W⟨tri⟩ · x)_groupwise + b
//! ```
//!
//! Gradients reach the shadow weights straight-through (the projection is
//! treated as identity in the backward pass).
//!
//! Forward, backward and every gradient run as blocked GEMM calls from
//! `pcnn-kernels`; all of them are bit-identical to the naive loops kept
//! in [`crate::reference`] (each output element stays one sequential
//! dot product — nothing reassociates).
//!
//! When the layer is trinary, [`Layer::infer_with`] routes through the
//! multiply-free `gemm_trinary`: the group's input block is transposed
//! into scratch (`in_g × batch`), multiplied against the bitplane-packed
//! weights, and transposed back — each output element still accumulates
//! its inputs in ascending order, so the result is bit-identical to the
//! f32 path. Training stays on the f32 GEMMs.

use crate::init::trinary_uniform;
use crate::layer::Layer;
use crate::optimizer::adam_update;
use crate::reference::LinearSpec;
use crate::tensor::Tensor;
use crate::trinary::{clip_shadow, trinarize, trinarize_into};
use pcnn_kernels::{gemm, gemm_abt, gemm_atb, gemm_trinary, take_resized, take_zeroed, Scratch};
use serde::{Deserialize, Serialize};

/// A grouped, optionally trinary, fully-connected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupedLinear {
    in_dim: usize,
    out_dim: usize,
    groups: usize,
    trinary: bool,
    /// Shadow weights, `[group][out_local][in_local]` flattened.
    w: Vec<f32>,
    alpha: Vec<f32>,
    bias: Vec<f32>,
    // Gradient accumulators and Adam moment buffers.
    gw: Vec<f32>,
    galpha: Vec<f32>,
    gbias: Vec<f32>,
    vw: Vec<f32>,
    valpha: Vec<f32>,
    vbias: Vec<f32>,
    sw: Vec<f32>,
    salpha: Vec<f32>,
    sbias: Vec<f32>,
    steps: u64,
    // Training caches (not persisted).
    #[serde(skip)]
    cached_input: Option<Tensor>,
    #[serde(skip)]
    cached_pre_scale: Option<Tensor>,
}

impl GroupedLinear {
    /// A new layer.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both `in_dim` and `out_dim`, or
    /// any dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, groups: usize, trinary: bool, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0 && groups > 0, "dimensions must be positive");
        assert_eq!(in_dim % groups, 0, "groups must divide in_dim");
        assert_eq!(out_dim % groups, 0, "groups must divide out_dim");
        let in_g = in_dim / groups;
        let n_w = groups * (out_dim / groups) * in_g;
        let w = if trinary {
            trinary_uniform(n_w, seed)
        } else {
            crate::init::he_uniform(n_w, in_g, seed)
        };
        // Alpha starts at 1/fan_in-ish so trinary sums land in O(1) range.
        let alpha0 = if trinary { 1.0 / (in_g as f32).sqrt() } else { 1.0 };
        GroupedLinear {
            in_dim,
            out_dim,
            groups,
            trinary,
            w,
            alpha: vec![alpha0; out_dim],
            bias: vec![0.0; out_dim],
            gw: vec![0.0; n_w],
            galpha: vec![0.0; out_dim],
            gbias: vec![0.0; out_dim],
            vw: vec![0.0; n_w],
            valpha: vec![0.0; out_dim],
            vbias: vec![0.0; out_dim],
            sw: vec![0.0; n_w],
            salpha: vec![0.0; out_dim],
            sbias: vec![0.0; out_dim],
            steps: 0,
            cached_input: None,
            cached_pre_scale: None,
        }
    }

    /// Sets every bias to `value` (builder style). Useful before
    /// hard-sigmoid activations: a positive initial bias centers the
    /// pre-activations inside the non-saturated band, where gradients
    /// flow.
    pub fn with_bias_init(mut self, value: f32) -> Self {
        for b in &mut self.bias {
            *b = value;
        }
        self
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Whether weights deploy as trinary.
    pub fn is_trinary(&self) -> bool {
        self.trinary
    }

    /// The deployed weight for `(group, out_local, in_local)` — trinary
    /// projected when the layer is trinary.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn deployed_weight(&self, group: usize, out_local: usize, in_local: usize) -> f32 {
        let (in_g, out_g) = (self.in_dim / self.groups, self.out_dim / self.groups);
        assert!(group < self.groups && out_local < out_g && in_local < in_g);
        let raw = self.w[(group * out_g + out_local) * in_g + in_local];
        if self.trinary {
            trinarize(raw)
        } else {
            raw
        }
    }

    /// The per-output scale vector `α`.
    pub fn alpha(&self) -> &[f32] {
        &self.alpha
    }

    /// The per-output bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// This layer's hyperparameters as a [`LinearSpec`] for the
    /// reference oracle.
    pub fn spec(&self) -> LinearSpec {
        LinearSpec { in_dim: self.in_dim, out_dim: self.out_dim, groups: self.groups }
    }

    /// The weights the layer actually computes with — trinary-projected
    /// when the layer is trinary, the raw shadows otherwise.
    pub fn effective_weights(&self) -> Vec<f32> {
        if self.trinary {
            let mut out = vec![0.0f32; self.w.len()];
            trinarize_into(&self.w, &mut out);
            out
        } else {
            self.w.clone()
        }
    }

    /// Accumulated `(gw, galpha, gbias)` gradients, exposed for the
    /// kernel-equivalence tests.
    #[doc(hidden)]
    pub fn debug_grads(&self) -> (&[f32], &[f32], &[f32]) {
        (&self.gw, &self.galpha, &self.gbias)
    }

    /// Replaces the shadow weights, so the equivalence tests can force
    /// specific deployed densities.
    ///
    /// # Panics
    ///
    /// Panics if the length doesn't match the layer's weight count.
    #[doc(hidden)]
    pub fn debug_set_shadow_weights(&mut self, w: &[f32]) {
        assert_eq!(w.len(), self.w.len(), "weight count mismatch");
        self.w.copy_from_slice(w);
    }

    /// The pure forward computation: `(pre-scale, output)`.
    ///
    /// Per group: `pre_g [batch × out_g] = X_g [batch × in_g] · W_gᵀ`,
    /// one strided GEMM straight into the `pre` tensor.
    fn apply_with(&self, input: &Tensor, s: &mut Scratch) -> (Tensor, Tensor) {
        assert_eq!(input.shape().len(), 2, "GroupedLinear takes (batch, features)");
        assert_eq!(input.shape()[1], self.in_dim, "input dim mismatch");
        let batch = input.shape()[0];
        let (in_g, out_g) = (self.in_dim / self.groups, self.out_dim / self.groups);
        let mut pre = Tensor::zeros(&[batch, self.out_dim]);
        let Scratch { gemm: gs, wbuf, .. } = s;
        let w_eff: &[f32] = if self.trinary {
            let wb = take_zeroed(wbuf, self.w.len());
            trinarize_into(&self.w, wb);
            wb
        } else {
            &self.w
        };
        for g in 0..self.groups {
            let xg = &input.data()[g * in_g..];
            let wg = &w_eff[g * out_g * in_g..][..out_g * in_g];
            let cg = &mut pre.data_mut()[g * out_g..];
            gemm_abt(gs, batch, in_g, out_g, xg, self.in_dim, wg, in_g, cg, self.out_dim);
        }
        let out = self.scale_pre(&pre, batch);
        (pre, out)
    }

    /// Applies the per-output `α`/bias affine to a pre-scale tensor.
    fn scale_pre(&self, pre: &Tensor, batch: usize) -> Tensor {
        let mut out = Tensor::zeros(&[batch, self.out_dim]);
        for n in 0..batch {
            for o in 0..self.out_dim {
                *out.at2_mut(n, o) = self.alpha[o] * pre.at2(n, o) + self.bias[o];
            }
        }
        out
    }

    /// [`Self::scale_pre`] applied in place, for inference where the
    /// unscaled pre-activation is not kept. Same arithmetic per
    /// element, so bit-identical to the copying form.
    fn scale_pre_in_place(&self, pre: &mut Tensor, batch: usize) {
        for n in 0..batch {
            for o in 0..self.out_dim {
                let v = pre.at2_mut(n, o);
                *v = self.alpha[o] * *v + self.bias[o];
            }
        }
    }

    /// The multiply-free inference path. `pre_gᵀ [out_g × batch] =
    /// W⟨tri⟩_g · X_gᵀ [in_g × batch]`: each output element is one
    /// ascending-input bit walk over the packed weight row, the same
    /// accumulation order as the f32 `gemm_abt` — so bit-identical.
    fn infer_trinary_with(&self, input: &Tensor, s: &mut Scratch) -> Tensor {
        assert!(self.trinary, "trinary path on a float layer");
        assert_eq!(input.shape().len(), 2, "GroupedLinear takes (batch, features)");
        assert_eq!(input.shape()[1], self.in_dim, "input dim mismatch");
        let batch = input.shape()[0];
        let (in_g, out_g) = (self.in_dim / self.groups, self.out_dim / self.groups);
        let mut pre = Tensor::zeros(&[batch, self.out_dim]);
        let Scratch { wbuf, wtri, bt, ct, .. } = s;
        // trinarize_into and the transpose pack overwrite every
        // element of their targets, so plain resizes avoid wasted
        // zeroing passes; `ct` stays zeroed — the GEMM accumulates.
        let wb = take_resized(wbuf, self.w.len());
        trinarize_into(&self.w, wb);
        for g in 0..self.groups {
            wtri.pack(&wb[g * out_g * in_g..][..out_g * in_g], in_g, out_g, in_g);
            let btb = take_resized(bt, in_g * batch);
            for n in 0..batch {
                for (i, row) in btb.chunks_exact_mut(batch).enumerate() {
                    row[n] = input.data()[n * self.in_dim + g * in_g + i];
                }
            }
            let ctb = take_zeroed(ct, out_g * batch);
            gemm_trinary(wtri, batch, btb, batch, ctb, batch);
            for n in 0..batch {
                let prow = &mut pre.data_mut()[n * self.out_dim + g * out_g..][..out_g];
                for (ol, pv) in prow.iter_mut().enumerate() {
                    *pv = ctb[ol * batch + n];
                }
            }
        }
        self.scale_pre_in_place(&mut pre, batch);
        pre
    }
}

impl Layer for GroupedLinear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut s = Scratch::default();
        self.forward_with(input, train, &mut s)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut s = Scratch::default();
        self.infer_with(input, &mut s)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut s = Scratch::default();
        self.backward_with(grad_out, &mut s)
    }

    fn forward_with(&mut self, input: &Tensor, train: bool, scratch: &mut Scratch) -> Tensor {
        let (pre, out) = self.apply_with(input, scratch);
        if train {
            self.cached_input = Some(input.clone());
            self.cached_pre_scale = Some(pre);
        }
        out
    }

    fn infer_with(&self, input: &Tensor, scratch: &mut Scratch) -> Tensor {
        if self.trinary {
            self.infer_trinary_with(input, scratch)
        } else {
            self.apply_with(input, scratch).1
        }
    }

    fn backward_with(&mut self, grad_out: &Tensor, scratch: &mut Scratch) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward without training forward");
        let pre = self.cached_pre_scale.as_ref().expect("missing pre-scale cache");
        let batch = input.shape()[0];
        assert_eq!(grad_out.shape(), &[batch, self.out_dim], "grad shape mismatch");
        let (in_g, out_g) = (self.in_dim / self.groups, self.out_dim / self.groups);
        let mut grad_in = Tensor::zeros(&[batch, self.in_dim]);
        let Scratch { gemm: gs, wbuf, dbuf, .. } = scratch;
        let w_eff: &[f32] = if self.trinary {
            let wb = take_zeroed(wbuf, self.w.len());
            trinarize_into(&self.w, wb);
            wb
        } else {
            &self.w
        };
        for g in 0..self.groups {
            // dα/db accumulate element-by-element in the naive
            // (sample, output) order; dbuf collects dy·α for the GEMMs.
            let db = take_zeroed(dbuf, batch * out_g);
            for n in 0..batch {
                let grow = &grad_out.data()[n * self.out_dim + g * out_g..][..out_g];
                let prow = &pre.data()[n * self.out_dim + g * out_g..][..out_g];
                let drow = &mut db[n * out_g..][..out_g];
                for ol in 0..out_g {
                    let o = g * out_g + ol;
                    let dy = grow[ol];
                    self.galpha[o] += dy * prow[ol];
                    self.gbias[o] += dy;
                    drow[ol] = dy * self.alpha[o];
                }
            }
            let wg = &w_eff[g * out_g * in_g..][..out_g * in_g];
            let xg = &input.data()[g * in_g..];
            // gw_g [out_g × in_g] += dbufᵀ · X_g — per weight this is the
            // same sequential sum over samples the naive loops produce.
            let gwg = &mut self.gw[g * out_g * in_g..][..out_g * in_g];
            gemm_atb(gs, out_g, batch, in_g, db, out_g, xg, self.in_dim, gwg, in_g);
            // grad_in_g [batch × in_g] = dbuf · W_g — sequential over
            // outputs, so this too is bit-identical.
            let gig = &mut grad_in.data_mut()[g * in_g..];
            gemm(gs, batch, out_g, in_g, db, out_g, wg, in_g, gig, self.in_dim);
        }
        grad_in
    }

    fn step(&mut self, lr: f32, momentum: f32) {
        // Adam: `momentum` plays beta1; beta2/eps fixed. Per-parameter
        // normalization is what lets shadow weights (whose raw gradients
        // carry an O(alpha) factor), alpha and bias all train at the same
        // effective rate.
        self.steps += 1;
        let t = self.steps;
        let trinary = self.trinary;
        adam_update(&mut self.w, &mut self.gw, &mut self.vw, &mut self.sw, lr, momentum, t);
        if trinary {
            for w in &mut self.w {
                *w = clip_shadow(*w);
            }
        }
        adam_update(
            &mut self.alpha,
            &mut self.galpha,
            &mut self.valpha,
            &mut self.salpha,
            lr,
            momentum,
            t,
        );
        adam_update(
            &mut self.bias,
            &mut self.gbias,
            &mut self.vbias,
            &mut self.sbias,
            lr,
            momentum,
            t,
        );
    }

    fn name(&self) -> &str {
        if self.trinary {
            "grouped-linear-trinary"
        } else {
            "grouped-linear"
        }
    }

    fn span_label(&self) -> &'static str {
        "eedn.linear"
    }

    fn parameter_count(&self) -> usize {
        self.w.len() + self.alpha.len() + self.bias.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(trinary: bool) {
        // Numeric gradient check on the float path; the trinary path uses
        // STE so its analytic gradient intentionally differs from the true
        // (zero a.e.) derivative — check only float here.
        let mut layer = GroupedLinear::new(4, 2, 1, trinary, 3);
        let x = Tensor::from_rows(&[vec![0.3, -0.2, 0.5, 0.1]]);
        let loss = |l: &mut GroupedLinear, x: &Tensor| -> f32 {
            let y = l.forward(x, false);
            y.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };
        let y = layer.forward(&x, true);
        let grad_out = y.clone(); // dL/dy = y for L = 0.5*||y||^2
        let grad_in = layer.backward(&grad_out);

        // Finite difference on the input.
        let eps = 1e-3;
        for j in 0..4 {
            let mut xp = x.clone();
            *xp.at2_mut(0, j) += eps;
            let mut xm = x.clone();
            *xm.at2_mut(0, j) -= eps;
            let num = (loss(&mut layer, &xp) - loss(&mut layer, &xm)) / (2.0 * eps);
            let ana = grad_in.at2(0, j);
            assert!((num - ana).abs() < 1e-2, "input grad {j}: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn gradient_check_float() {
        finite_diff_check(false);
    }

    #[test]
    fn trinary_forward_uses_projected_weights() {
        let mut layer = GroupedLinear::new(2, 1, 1, true, 1);
        // Force known shadows.
        layer.w = vec![0.9, 0.1]; // deploys as [1, 0]
        layer.alpha = vec![1.0];
        layer.bias = vec![0.0];
        let y = layer.forward(&Tensor::from_rows(&[vec![2.0, 100.0]]), false);
        assert_eq!(y.at2(0, 0), 2.0, "the 0.1 shadow must deploy as 0");
        assert_eq!(layer.deployed_weight(0, 0, 0), 1.0);
        assert_eq!(layer.deployed_weight(0, 0, 1), 0.0);
    }

    #[test]
    fn grouping_is_block_diagonal() {
        let mut layer = GroupedLinear::new(4, 2, 2, false, 5);
        // Group 0: inputs 0..2 -> output 0; group 1: inputs 2..4 -> output 1.
        let y_a = layer.forward(&Tensor::from_rows(&[vec![1.0, 1.0, 0.0, 0.0]]), false);
        let y_b = layer.forward(&Tensor::from_rows(&[vec![1.0, 1.0, 9.0, -9.0]]), false);
        assert!((y_a.at2(0, 0) - y_b.at2(0, 0)).abs() < 1e-6, "output 0 ignores group 1 inputs");
        assert_ne!(y_a.at2(0, 1), y_b.at2(0, 1));
    }

    #[test]
    fn learns_xor_like_float_task() {
        // Two-layer float network reduces loss on a linearly separable task
        // via this layer's gradients alone.
        let mut l1 = GroupedLinear::new(2, 8, 1, false, 7);
        let mut l2 = GroupedLinear::new(8, 1, 1, false, 8);
        let xs =
            Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0], vec![0.0, -1.0]]);
        let ys = [1.0f32, 1.0, -1.0, -1.0];
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let h = l1.forward(&xs, true);
            let mut hr = h.clone();
            hr.map_in_place(|v| v.max(0.0));
            let out = l2.forward(&hr, true);
            let mut grad = Tensor::zeros(&[4, 1]);
            let mut loss = 0.0;
            for (n, &target) in ys.iter().enumerate() {
                let d = out.at2(n, 0) - target;
                loss += 0.5 * d * d;
                *grad.at2_mut(n, 0) = d;
            }
            let gh = l2.backward(&grad);
            let mut ghr = gh.clone();
            for n in 0..4 {
                for j in 0..8 {
                    if h.at2(n, j) <= 0.0 {
                        *ghr.at2_mut(n, j) = 0.0;
                    }
                }
            }
            l1.backward(&ghr);
            l1.step(0.05, 0.9);
            l2.step(0.05, 0.9);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.05, "loss {first_loss:?} -> {last_loss}");
    }

    #[test]
    fn trinary_layer_trains_on_sign_task() {
        // Even with trinary weights, alpha/bias plus STE shadows learn to
        // separate a simple pattern.
        let mut l = GroupedLinear::new(4, 1, 1, true, 9);
        let xs = Tensor::from_rows(&[vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 1.0]]);
        let ys = [1.0f32, -1.0];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let out = l.forward(&xs, true);
            let mut grad = Tensor::zeros(&[2, 1]);
            let mut loss = 0.0;
            for (n, &target) in ys.iter().enumerate() {
                let d = out.at2(n, 0) - target;
                loss += 0.5 * d * d;
                *grad.at2_mut(n, 0) = d;
            }
            l.backward(&grad);
            l.step(0.02, 0.9);
            last = loss;
        }
        assert!(last < 0.05, "trinary loss {last}");
        // Deployed weights are exactly in {-1, 0, 1}.
        for il in 0..4 {
            let w = l.deployed_weight(0, 0, il);
            assert!(w == -1.0 || w == 0.0 || w == 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "groups must divide")]
    fn bad_grouping_rejected() {
        GroupedLinear::new(5, 2, 2, false, 0);
    }

    #[test]
    fn step_clears_gradients() {
        let mut l = GroupedLinear::new(2, 2, 1, false, 11);
        let x = Tensor::from_rows(&[vec![1.0, 2.0]]);
        let y = l.forward(&x, true);
        l.backward(&y);
        l.step(0.1, 0.0);
        assert!(l.gw.iter().all(|&g| g == 0.0));
        assert!(l.gbias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let l = GroupedLinear::new(8, 6, 2, true, 13);
        let x = Tensor::from_rows(&[
            (0..8).map(|i| (i as f32 * 0.3).sin()).collect(),
            (0..8).map(|i| (i as f32 * 0.7).cos()).collect(),
        ]);
        let mut s = Scratch::default();
        for _ in 0..3 {
            assert_eq!(l.infer_with(&x, &mut s), l.infer(&x));
        }
    }
}
