//! Input replication: tile a feature vector `n` times.
//!
//! TrueNorth's host interface (and on-chip splitter corelets) can deliver
//! one input spike train to many cores at once, so a network's *first*
//! layer may consist of several crossbars that each see the whole input.
//! `Replicate` expresses that in the training graph: the input is tiled
//! `copies` times so a following [`GroupedLinear`](crate::fc::GroupedLinear)
//! with `groups = copies` gives every group full input visibility while
//! still mapping one group per core.

use crate::layer::Layer;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Tiles rank-2 features `copies` times along the feature axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replicate {
    copies: usize,
    in_dim: Option<usize>,
}

impl Replicate {
    /// A replication layer.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn new(copies: usize) -> Self {
        assert!(copies > 0, "need at least one copy");
        Replicate { copies, in_dim: None }
    }

    /// Number of copies produced.
    pub fn copies(&self) -> usize {
        self.copies
    }
}

impl Layer for Replicate {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = self.infer(input);
        self.in_dim = Some(input.shape()[1]);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Replicate takes (batch, features)");
        let (batch, d) = (input.shape()[0], input.shape()[1]);
        let mut out = Tensor::zeros(&[batch, d * self.copies]);
        for n in 0..batch {
            for c in 0..self.copies {
                for j in 0..d {
                    *out.at2_mut(n, c * d + j) = input.at2(n, j);
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let d = self.in_dim.expect("backward without forward");
        let batch = grad_out.shape()[0];
        assert_eq!(grad_out.shape()[1], d * self.copies, "grad shape mismatch");
        let mut grad_in = Tensor::zeros(&[batch, d]);
        for n in 0..batch {
            for c in 0..self.copies {
                for j in 0..d {
                    *grad_in.at2_mut(n, j) += grad_out.at2(n, c * d + j);
                }
            }
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "replicate"
    }

    fn span_label(&self) -> &'static str {
        "eedn.replicate"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_tiles() {
        let mut r = Replicate::new(3);
        let x = Tensor::from_rows(&[vec![1.0, 2.0]]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn backward_sums_copies() {
        let mut r = Replicate::new(2);
        let x = Tensor::from_rows(&[vec![1.0, 2.0]]);
        r.forward(&x, true);
        let g = r.backward(&Tensor::from_rows(&[vec![1.0, 10.0, 100.0, 1000.0]]));
        assert_eq!(g.data(), &[101.0, 1010.0]);
    }

    #[test]
    fn single_copy_is_identity() {
        let mut r = Replicate::new(1);
        let x = Tensor::from_rows(&[vec![3.0, 4.0, 5.0]]);
        assert_eq!(r.forward(&x, false), x);
    }
}
