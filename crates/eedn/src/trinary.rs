//! Trinary weight projection.
//!
//! Eedn "maintains a high precision hidden value during training which is
//! then mapped to one of the trinary weights (−1, 0, 1) during network
//! operation". The projection is a deterministic round with a dead zone:
//! shadows in `(-0.5, 0.5)` deploy as 0, otherwise as ±1. Shadows are
//! clipped to `[-1, 1]` after every update so the projection stays
//! responsive to gradient pressure in both directions.

/// Shadow-weight clipping bound.
pub const SHADOW_CLIP: f32 = 1.0;
/// Dead-zone half-width: shadows below this magnitude deploy as zero.
pub const ZERO_BAND: f32 = 0.5;

/// Projects one shadow weight onto `{-1, 0, 1}`.
#[inline]
pub fn trinarize(shadow: f32) -> f32 {
    if shadow >= ZERO_BAND {
        1.0
    } else if shadow <= -ZERO_BAND {
        -1.0
    } else {
        0.0
    }
}

/// Clips one shadow weight into `[-SHADOW_CLIP, SHADOW_CLIP]`.
#[inline]
pub fn clip_shadow(shadow: f32) -> f32 {
    shadow.clamp(-SHADOW_CLIP, SHADOW_CLIP)
}

/// Projects a whole slice, writing the trinary values into `out`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn trinarize_into(shadows: &[f32], out: &mut [f32]) {
    assert_eq!(shadows.len(), out.len(), "length mismatch");
    for (o, &s) in out.iter_mut().zip(shadows) {
        *o = trinarize(s);
    }
}

/// Fraction of non-zero deployed weights — the connectivity density a
/// crossbar would actually program.
pub fn density(shadows: &[f32]) -> f32 {
    if shadows.is_empty() {
        return 0.0;
    }
    shadows.iter().filter(|&&s| trinarize(s) != 0.0).count() as f32 / shadows.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_values() {
        assert_eq!(trinarize(0.9), 1.0);
        assert_eq!(trinarize(0.5), 1.0);
        assert_eq!(trinarize(0.49), 0.0);
        assert_eq!(trinarize(0.0), 0.0);
        assert_eq!(trinarize(-0.49), 0.0);
        assert_eq!(trinarize(-0.5), -1.0);
        assert_eq!(trinarize(-3.0), -1.0);
    }

    #[test]
    fn clip_bounds() {
        assert_eq!(clip_shadow(5.0), 1.0);
        assert_eq!(clip_shadow(-5.0), -1.0);
        assert_eq!(clip_shadow(0.3), 0.3);
    }

    #[test]
    fn bulk_projection() {
        let s = [0.7, -0.7, 0.1];
        let mut out = [0.0; 3];
        trinarize_into(&s, &mut out);
        assert_eq!(out, [1.0, -1.0, 0.0]);
    }

    #[test]
    fn density_counts_nonzero() {
        assert_eq!(density(&[0.7, -0.7, 0.1, 0.2]), 0.5);
        assert_eq!(density(&[]), 0.0);
    }
}
