//! Trinary weight projection.
//!
//! Eedn "maintains a high precision hidden value during training which is
//! then mapped to one of the trinary weights (−1, 0, 1) during network
//! operation". The projection is a deterministic round with a dead zone:
//! shadows in `(-0.5, 0.5)` deploy as 0, otherwise as ±1. Shadows are
//! clipped to `[-1, 1]` after every update so the projection stays
//! responsive to gradient pressure in both directions.

pub use pcnn_kernels::TrinaryStats;

/// Shadow-weight clipping bound.
pub const SHADOW_CLIP: f32 = 1.0;
/// Dead-zone half-width: shadows below this magnitude deploy as zero.
pub const ZERO_BAND: f32 = 0.5;

/// Projects one shadow weight onto `{-1, 0, 1}`.
#[inline]
pub fn trinarize(shadow: f32) -> f32 {
    if shadow >= ZERO_BAND {
        1.0
    } else if shadow <= -ZERO_BAND {
        -1.0
    } else {
        0.0
    }
}

/// Clips one shadow weight into `[-SHADOW_CLIP, SHADOW_CLIP]`.
#[inline]
pub fn clip_shadow(shadow: f32) -> f32 {
    shadow.clamp(-SHADOW_CLIP, SHADOW_CLIP)
}

/// Projects a whole slice, writing the trinary values into `out`, and
/// returns the population counts — the same [`TrinaryStats`] the
/// bitplane packer in `pcnn-kernels` reports, so deployment code can
/// size/attribute the multiply-free path without a second pass.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn trinarize_into(shadows: &[f32], out: &mut [f32]) -> TrinaryStats {
    assert_eq!(shadows.len(), out.len(), "length mismatch");
    let mut stats = TrinaryStats { plus: 0, minus: 0, total: shadows.len() };
    for (o, &s) in out.iter_mut().zip(shadows) {
        let t = trinarize(s);
        *o = t;
        if t == 1.0 {
            stats.plus += 1;
        } else if t == -1.0 {
            stats.minus += 1;
        }
    }
    stats
}

/// Population counts of the deployed projection of `shadows`, without
/// materialising the projected values.
pub fn stats(shadows: &[f32]) -> TrinaryStats {
    let mut s = TrinaryStats { plus: 0, minus: 0, total: shadows.len() };
    for &v in shadows {
        let t = trinarize(v);
        if t == 1.0 {
            s.plus += 1;
        } else if t == -1.0 {
            s.minus += 1;
        }
    }
    s
}

/// Fraction of non-zero deployed weights — the connectivity density a
/// crossbar would actually program.
///
/// The empty slice has density `0.0` by definition (no weight is
/// nonzero, so a crossbar would program no connections); this matches
/// [`TrinaryStats::density`] on an empty buffer.
pub fn density(shadows: &[f32]) -> f32 {
    stats(shadows).density()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_values() {
        assert_eq!(trinarize(0.9), 1.0);
        assert_eq!(trinarize(0.5), 1.0);
        assert_eq!(trinarize(0.49), 0.0);
        assert_eq!(trinarize(0.0), 0.0);
        assert_eq!(trinarize(-0.49), 0.0);
        assert_eq!(trinarize(-0.5), -1.0);
        assert_eq!(trinarize(-3.0), -1.0);
    }

    #[test]
    fn clip_bounds() {
        assert_eq!(clip_shadow(5.0), 1.0);
        assert_eq!(clip_shadow(-5.0), -1.0);
        assert_eq!(clip_shadow(0.3), 0.3);
    }

    #[test]
    fn bulk_projection_reports_stats() {
        let s = [0.7, -0.7, 0.1];
        let mut out = [0.0; 3];
        let stats = trinarize_into(&s, &mut out);
        assert_eq!(out, [1.0, -1.0, 0.0]);
        assert_eq!(stats, TrinaryStats { plus: 1, minus: 1, total: 3 });
        assert_eq!(stats.nonzero(), 2);
    }

    #[test]
    fn stats_match_projection_without_materialising() {
        let s = [0.7, -0.7, 0.1, -0.9];
        let mut out = [0.0; 4];
        assert_eq!(stats(&s), trinarize_into(&s, &mut out));
    }

    #[test]
    fn density_counts_nonzero() {
        assert_eq!(density(&[0.7, -0.7, 0.1, 0.2]), 0.5);
        assert_eq!(density(&[0.1, 0.2]), 0.0);
        assert_eq!(density(&[0.9, -0.9]), 1.0);
    }

    #[test]
    fn density_of_empty_slice_is_zero_by_definition() {
        // Documented behavior, not an accident: an empty buffer programs
        // no crossbar connections.
        assert_eq!(density(&[]), 0.0);
        assert_eq!(stats(&[]), TrinaryStats::default());
        assert_eq!(TrinaryStats::default().density(), 0.0);
    }
}
