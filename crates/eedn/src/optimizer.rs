//! The Adam update rule shared by all parameterized layers.

/// Exponential decay for the second moment.
pub const BETA2: f32 = 0.999;
/// Numerical floor inside the denominator.
pub const EPS: f32 = 1e-8;

/// One Adam step over a parameter slice.
///
/// `grads` are consumed (zeroed); `m`/`v` are the first/second moment
/// buffers; `beta1` is the caller's momentum knob; `t ≥ 1` drives bias
/// correction.
///
/// # Panics
///
/// Panics if the slices differ in length or `t == 0`.
pub fn adam_update(
    params: &mut [f32],
    grads: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    t: u64,
) {
    assert!(t >= 1, "adam step counter starts at 1");
    assert!(
        params.len() == grads.len() && params.len() == m.len() && params.len() == v.len(),
        "adam buffer length mismatch"
    );
    let bc1 = 1.0 - beta1.powi(t.min(1_000_000) as i32);
    let bc2 = 1.0 - BETA2.powi(t.min(1_000_000) as i32);
    for i in 0..params.len() {
        let g = grads[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = BETA2 * v[i] + (1.0 - BETA2) * g * g;
        let mhat = m[i] / bc1.max(EPS);
        let vhat = v[i] / bc2.max(EPS);
        params[i] -= lr * mhat / (vhat.sqrt() + EPS);
        grads[i] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        // Minimize (x - 3)^2 from x = 0.
        let mut x = [0.0f32];
        let mut m = [0.0];
        let mut v = [0.0];
        for t in 1..=500 {
            let mut g = [2.0 * (x[0] - 3.0)];
            adam_update(&mut x, &mut g, &mut m, &mut v, 0.05, 0.9, t);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn normalizes_gradient_scale() {
        // Two coordinates with gradients differing by 1000x move at
        // comparable speeds — the property plain SGD lacks.
        let mut x = [0.0f32, 0.0];
        let mut m = [0.0; 2];
        let mut v = [0.0; 2];
        for t in 1..=20 {
            let mut g = [1000.0 * (x[0] - 1.0), 0.001 * (x[1] - 1.0)];
            adam_update(&mut x, &mut g, &mut m, &mut v, 0.05, 0.9, t);
        }
        assert!((x[0] - x[1]).abs() < 0.1, "x = {x:?}");
        assert!(x[0] > 0.3);
    }

    #[test]
    fn zeroes_gradients() {
        let mut x = [1.0f32];
        let mut g = [5.0];
        let mut m = [0.0];
        let mut v = [0.0];
        adam_update(&mut x, &mut g, &mut m, &mut v, 0.01, 0.9, 1);
        assert_eq!(g[0], 0.0);
    }
}
