//! A minimal dense tensor: row-major `f32` data plus a shape.
//!
//! The training stack only needs rank-2 `(batch, features)` and rank-4
//! `(batch, channels, height, width)` tensors, but the type is
//! rank-agnostic. Indexing helpers exist for both common ranks; bulk math
//! stays on the flat data slice for speed.

use serde::{Deserialize, Serialize};

/// A dense row-major tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension in {shape:?}");
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let vol: usize = shape.iter().product();
        assert_eq!(data.len(), vol, "data length {} != shape volume {vol}", data.len());
        assert!(!shape.is_empty() && shape.iter().all(|&d| d > 0));
        Tensor { shape: shape.to_vec(), data }
    }

    /// Builds a rank-2 tensor from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let d = rows[0].len();
        assert!(d > 0, "empty rows");
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { shape: vec![rows.len(), d], data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat write access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        let vol: usize = shape.iter().product();
        assert_eq!(self.data.len(), vol, "reshape volume mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// Element at `(i, j)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[i * self.shape[1] + j]
    }

    /// Element at `(n, c, h, w)` of a rank-4 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cs, hs, ws) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Mutable element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cs, hs, ws) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// One row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() needs a rank-2 tensor");
        let d = self.shape[1];
        &self.data[i * d..(i + 1) * d]
    }

    /// Mutable row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.shape.len(), 2, "row_mut() needs a rank-2 tensor");
        let d = self.shape[1];
        &mut self.data[i * d..(i + 1) * d]
    }

    /// Contiguous channel planes `c0 .. c0 + count` of sample `n` in a
    /// rank-4 tensor — the view `im2col` packs from.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the range is out of bounds.
    pub fn channels(&self, n: usize, c0: usize, count: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 4, "channels() needs a rank-4 tensor");
        let (cs, plane) = (self.shape[1], self.shape[2] * self.shape[3]);
        assert!(c0 + count <= cs, "channel range out of bounds");
        &self.data[(n * cs + c0) * plane..][..count * plane]
    }

    /// Mutable contiguous channel planes of sample `n`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the range is out of bounds.
    pub fn channels_mut(&mut self, n: usize, c0: usize, count: usize) -> &mut [f32] {
        assert_eq!(self.shape.len(), 4, "channels_mut() needs a rank-4 tensor");
        let (cs, plane) = (self.shape[1], self.shape[2] * self.shape[3]);
        assert!(c0 + count <= cs, "channel range out of bounds");
        &mut self.data[(n * cs + c0) * plane..][..count * plane]
    }

    /// Applies `f` to every element, in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_volume() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rank2_indexing_row_major() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at2(0, 2), 2.0);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn rank4_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 9.0;
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
        // The last element of the flat buffer.
        assert_eq!(t.data()[2 * 3 * 4 * 5 - 1], 9.0);
    }

    #[test]
    fn from_rows_and_reshape() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn map_in_place() {
        let mut t = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]);
        t.map_in_place(f32::abs);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "volume mismatch")]
    fn bad_reshape_panics() {
        Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Tensor::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
