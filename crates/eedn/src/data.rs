//! Labelled datasets and seeded mini-batch iteration.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An in-memory classification dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    xs: Vec<Vec<f32>>,
    ys: Vec<usize>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Builds from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or examples are ragged.
    pub fn from_parts(xs: Vec<Vec<f32>>, ys: Vec<usize>) -> Self {
        assert_eq!(xs.len(), ys.len(), "example/label count mismatch");
        if let Some(first) = xs.first() {
            let d = first.len();
            assert!(xs.iter().all(|x| x.len() == d), "ragged examples");
        }
        Dataset { xs, ys }
    }

    /// Appends one example.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionality differs from existing examples.
    pub fn push(&mut self, x: Vec<f32>, y: usize) {
        if let Some(first) = self.xs.first() {
            assert_eq!(x.len(), first.len(), "dimensionality mismatch");
        }
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Example dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.xs.first().map_or(0, |x| x.len())
    }

    /// All examples as a rank-2 tensor plus labels.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn as_tensor(&self) -> (Tensor, Vec<usize>) {
        (Tensor::from_rows(&self.xs), self.ys.clone())
    }

    /// The examples.
    pub fn examples(&self) -> &[Vec<f32>] {
        &self.xs
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.ys
    }

    /// Iterates seeded, shuffled mini-batches as `(tensor, labels)` pairs.
    /// The final short batch is included.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the dataset is empty.
    pub fn batches(&self, batch: usize, seed: u64) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch > 0, "batch size must be positive");
        assert!(!self.is_empty(), "no data to batch");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed));
        order
            .chunks(batch)
            .map(|chunk| {
                let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| self.xs[i].clone()).collect();
                let labels: Vec<usize> = chunk.iter().map(|&i| self.ys[i]).collect();
                (Tensor::from_rows(&rows), labels)
            })
            .collect()
    }

    /// Splits into `(train, holdout)` with `holdout_fraction` of examples
    /// (deterministically, by seeded shuffle).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1)`.
    pub fn split(&self, holdout_fraction: f32, seed: u64) -> (Dataset, Dataset) {
        assert!(
            holdout_fraction > 0.0 && holdout_fraction < 1.0,
            "holdout fraction must be in (0, 1)"
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed));
        let n_holdout = ((self.len() as f32) * holdout_fraction).round() as usize;
        let (hold, train) = order.split_at(n_holdout.min(self.len()));
        let pick = |idx: &[usize]| {
            Dataset::from_parts(
                idx.iter().map(|&i| self.xs[i].clone()).collect(),
                idx.iter().map(|&i| self.ys[i]).collect(),
            )
        };
        (pick(train), pick(hold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize) -> Dataset {
        Dataset::from_parts(
            (0..n).map(|i| vec![i as f32, -(i as f32)]).collect(),
            (0..n).map(|i| i % 3).collect(),
        )
    }

    #[test]
    fn batches_cover_all_examples_once() {
        let d = ds(10);
        let bs = d.batches(3, 42);
        assert_eq!(bs.len(), 4); // 3+3+3+1
        let total: usize = bs.iter().map(|(t, _)| t.shape()[0]).sum();
        assert_eq!(total, 10);
        let mut seen: Vec<f32> =
            bs.iter().flat_map(|(t, _)| t.data().iter().step_by(2).copied()).collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn batches_are_seed_deterministic() {
        let d = ds(10);
        let a = d.batches(4, 1);
        let b = d.batches(4, 1);
        assert_eq!(a.len(), b.len());
        for ((ta, la), (tb, lb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn split_partitions() {
        let d = ds(20);
        let (train, hold) = d.split(0.25, 7);
        assert_eq!(hold.len(), 5);
        assert_eq!(train.len(), 15);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        Dataset::from_parts(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }
}
