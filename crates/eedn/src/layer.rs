//! The layer trait all network building blocks implement.

use crate::tensor::Tensor;

/// One differentiable network stage.
///
/// Layers own their parameters, cached activations and gradient
/// accumulators; the training loop drives them with
/// `forward → backward → step`. `Send + Sync` is required so trained
/// networks can be shared across inference worker threads.
pub trait Layer: Send + Sync {
    /// Computes the layer output. `train` enables caching needed by
    /// [`backward`](Layer::backward); inference passes `false`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Computes the layer output without touching any internal state.
    ///
    /// Equivalent to `forward(input, false)` but takes `&self`, so a
    /// trained network can serve inference from many threads over one
    /// shared reference. Implementations must be bit-identical to the
    /// inference-mode forward pass.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding training-mode
    /// forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated gradients with Adam (`momentum` supplies beta1) and clears them.
    /// Layers without parameters do nothing.
    fn step(&mut self, lr: f32, momentum: f32);

    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// Number of trainable parameters.
    fn parameter_count(&self) -> usize {
        0
    }
}
