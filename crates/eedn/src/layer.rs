//! The layer trait all network building blocks implement.

use crate::tensor::Tensor;
use pcnn_kernels::Scratch;

/// One differentiable network stage.
///
/// Layers own their parameters, cached activations and gradient
/// accumulators; the training loop drives them with
/// `forward → backward → step`. `Send + Sync` is required so trained
/// networks can be shared across inference worker threads.
///
/// The `_with` variants thread a caller-owned [`Scratch`] through the
/// compute-heavy layers so steady-state training and serving allocate
/// nothing per call; the plain methods remain the canonical semantics
/// and the default `_with` implementations simply forward to them.
/// Either entry point produces bit-identical outputs.
pub trait Layer: Send + Sync {
    /// Computes the layer output. `train` enables caching needed by
    /// [`backward`](Layer::backward); inference passes `false`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Computes the layer output without touching any internal state.
    ///
    /// Equivalent to `forward(input, false)` but takes `&self`, so a
    /// trained network can serve inference from many threads over one
    /// shared reference. Implementations must be bit-identical to the
    /// inference-mode forward pass.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding training-mode
    /// forward pass.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// [`forward`](Layer::forward) reusing the caller's scratch buffers.
    fn forward_with(&mut self, input: &Tensor, train: bool, _scratch: &mut Scratch) -> Tensor {
        self.forward(input, train)
    }

    /// [`infer`](Layer::infer) reusing the caller's scratch buffers.
    fn infer_with(&self, input: &Tensor, _scratch: &mut Scratch) -> Tensor {
        self.infer(input)
    }

    /// [`backward`](Layer::backward) reusing the caller's scratch buffers.
    fn backward_with(&mut self, grad_out: &Tensor, _scratch: &mut Scratch) -> Tensor {
        self.backward(grad_out)
    }

    /// Applies accumulated gradients with Adam (`momentum` supplies beta1) and clears them.
    /// Layers without parameters do nothing.
    fn step(&mut self, lr: f32, momentum: f32);

    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// The static span name this layer's passes record under (trace
    /// spans require `&'static str`, which rules out [`name`]).
    /// Layer families override this (`"eedn.linear"`, `"eedn.conv"`,
    /// …); the default covers ad-hoc layers in tests.
    ///
    /// [`name`]: Layer::name
    fn span_label(&self) -> &'static str {
        "eedn.layer"
    }

    /// Type-erasure escape hatch: the layer as [`std::any::Any`], so
    /// checkpointing code can downcast a boxed layer back to its
    /// concrete type. Implementations return `self`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Number of trainable parameters.
    fn parameter_count(&self) -> usize {
        0
    }
}
