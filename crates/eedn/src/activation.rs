//! Activation layers: the spiking threshold, its rate-coded surrogate,
//! and a plain ReLU baseline.

use crate::layer::Layer;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Eedn's spiking neuron activation: output 1 when the pre-activation is
/// positive, else 0. "The derivative of this function is approximated for
/// training" — here with the standard triangle surrogate
/// `∂y/∂x ≈ max(0, 1 − |x|)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Threshold {
    #[serde(skip)]
    cached: Option<Tensor>,
}

impl Threshold {
    /// A new threshold activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Threshold {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        out.map_in_place(|v| if v > 0.0 { 1.0 } else { 0.0 });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached.as_ref().expect("backward without training forward");
        assert_eq!(input.shape(), grad_out.shape(), "grad shape mismatch");
        let mut grad_in = grad_out.clone();
        for (g, &x) in grad_in.data_mut().iter_mut().zip(input.data()) {
            *g *= (1.0 - x.abs()).max(0.0);
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "threshold"
    }

    fn span_label(&self) -> &'static str {
        "eedn.activation"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Hard sigmoid: `clamp(x, 0, 1)`.
///
/// Under rate coding this is the *exact expected output rate* of a
/// TrueNorth integrator neuron (linear reset, threshold folded into the
/// layer's α scale): the neuron emits `clamp(w·x̄/T, 0, 1)` spikes per
/// tick in steady state. Networks trained with this activation therefore
/// deploy onto the simulator with matching semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HardSigmoid {
    #[serde(skip)]
    cached: Option<Tensor>,
}

impl HardSigmoid {
    /// A new hard-sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for HardSigmoid {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        out.map_in_place(|v| v.clamp(0.0, 1.0));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached.as_ref().expect("backward without training forward");
        assert_eq!(input.shape(), grad_out.shape(), "grad shape mismatch");
        let mut grad_in = grad_out.clone();
        for (g, &x) in grad_in.data_mut().iter_mut().zip(input.data()) {
            if !(0.0..=1.0).contains(&x) {
                // Leaky surrogate: saturated units keep a trickle of
                // gradient so they can re-enter the active band instead of
                // dying. Forward semantics (the deployed rate) unchanged.
                *g *= 0.1;
            }
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "hard-sigmoid"
    }

    fn span_label(&self) -> &'static str {
        "eedn.activation"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Plain ReLU, for float (non-neuromorphic) baselines.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    cached: Option<Tensor>,
}

impl Relu {
    /// A new ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached = Some(input.clone());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        out.map_in_place(|v| v.max(0.0));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached.as_ref().expect("backward without training forward");
        assert_eq!(input.shape(), grad_out.shape(), "grad shape mismatch");
        let mut grad_in = grad_out.clone();
        for (g, &x) in grad_in.data_mut().iter_mut().zip(input.data()) {
            if x <= 0.0 {
                *g = 0.0;
            }
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "relu"
    }

    fn span_label(&self) -> &'static str {
        "eedn.activation"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(&[1, v.len()], v.to_vec())
    }

    #[test]
    fn threshold_is_binary() {
        let mut a = Threshold::new();
        let y = a.forward(&t(&[-1.0, 0.0, 0.5, 2.0]), false);
        assert_eq!(y.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn threshold_surrogate_gradient_window() {
        let mut a = Threshold::new();
        a.forward(&t(&[-2.0, -0.5, 0.0, 0.5, 2.0]), true);
        let g = a.backward(&t(&[1.0; 5]));
        assert_eq!(g.data(), &[0.0, 0.5, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn hard_sigmoid_clamps() {
        let mut a = HardSigmoid::new();
        let y = a.forward(&t(&[-0.5, 0.25, 0.75, 1.5]), false);
        assert_eq!(y.data(), &[0.0, 0.25, 0.75, 1.0]);
    }

    #[test]
    fn hard_sigmoid_gradient_attenuates_saturation() {
        // Leaky surrogate: full gradient in-band, 10% outside.
        let mut a = HardSigmoid::new();
        a.forward(&t(&[-0.5, 0.5, 1.5]), true);
        let g = a.backward(&t(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.1, 1.0, 0.1]);
    }

    #[test]
    fn relu_and_gradient() {
        let mut a = Relu::new();
        let y = a.forward(&t(&[-1.0, 2.0]), true);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = a.backward(&t(&[5.0, 5.0]));
        assert_eq!(g.data(), &[0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "without training forward")]
    fn backward_requires_training_forward() {
        let mut a = Relu::new();
        a.forward(&t(&[1.0]), false);
        a.backward(&t(&[1.0]));
    }
}
