//! Fixed feature permutation between grouped layers.
//!
//! Stacked block-diagonal (grouped) layers never mix information across
//! groups; a fixed, seeded permutation between them restores mixing while
//! remaining free on hardware (it is just routing). This is the simulator
//! analogue of Eedn's inter-layer core wiring.

use crate::layer::Layer;
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fixed permutation of rank-2 features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Permute {
    perm: Vec<usize>,
    inverse: Vec<usize>,
}

impl Permute {
    /// A seeded random permutation of `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "permutation over zero features");
        let mut perm: Vec<usize> = (0..dim).collect();
        perm.shuffle(&mut SmallRng::seed_from_u64(seed));
        Self::from_perm(perm)
    }

    /// Wraps an explicit permutation (`out[i] = in[perm[i]]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn from_perm(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut inverse = vec![0; n];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        Permute { perm, inverse }
    }

    /// The permutation table.
    pub fn table(&self) -> &[usize] {
        &self.perm
    }
}

impl Layer for Permute {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Permute takes (batch, features)");
        assert_eq!(input.shape()[1], self.perm.len(), "dimension mismatch");
        let batch = input.shape()[0];
        let mut out = Tensor::zeros(input.shape());
        for n in 0..batch {
            for (i, &p) in self.perm.iter().enumerate() {
                *out.at2_mut(n, i) = input.at2(n, p);
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.shape()[0];
        let mut grad_in = Tensor::zeros(grad_out.shape());
        for n in 0..batch {
            for (i, &inv) in self.inverse.iter().enumerate() {
                *grad_in.at2_mut(n, i) = grad_out.at2(n, inv);
            }
        }
        grad_in
    }

    fn step(&mut self, _lr: f32, _momentum: f32) {}

    fn name(&self) -> &str {
        "permute"
    }

    fn span_label(&self) -> &'static str {
        "eedn.permute"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_permutation() {
        let mut p = Permute::from_perm(vec![2, 0, 1]);
        let x = Tensor::from_rows(&[vec![10.0, 20.0, 30.0]]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[30.0, 10.0, 20.0]);
    }

    #[test]
    fn backward_is_inverse() {
        let mut p = Permute::random(16, 3);
        let x = Tensor::from_rows(&[(0..16).map(|i| i as f32).collect()]);
        let y = p.forward(&x, true);
        // Gradient of identity loss: backward(forward(x)) must restore order.
        let g = p.backward(&y);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn random_is_seeded() {
        assert_eq!(Permute::random(32, 5).table(), Permute::random(32, 5).table());
        assert_ne!(Permute::random(32, 5).table(), Permute::random(32, 6).table());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_rejected() {
        Permute::from_perm(vec![0, 0, 1]);
    }
}
