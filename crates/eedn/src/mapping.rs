//! Mapping trained networks onto neurosynaptic cores.
//!
//! Three jobs:
//!
//! 1. **Fit checking** — verify that a layer's groups respect the
//!    crossbar: trinary weights need a positive and a negative axon copy
//!    per input, so a group may use at most 127 inputs (254 axons + 1
//!    always-on bias axon) and 256 outputs.
//! 2. **Core accounting** — the paper compares designs by core count
//!    (2864-core classifier, 8 cores per parrot cell, 3888 combined);
//!    [`network_core_count`] computes the same metric for our networks.
//! 3. **Deployment** — [`deploy_mlp`] compiles a trained trinary MLP into
//!    actual [`System`] cores. Weights `{-1,0,1}` become crossbar
//!    connections on the ± axon copies, the learned per-output scale `α`
//!    becomes the neuron threshold `T = round(1/α)`, the bias becomes a
//!    per-neuron LUT entry on a shared always-spiking bias axon, and
//!    linear-reset integrator neurons make the output *rate* equal the
//!    trained hard-sigmoid activation in expectation.

use crate::fc::GroupedLinear;
use crate::tensor::Tensor;
use pcnn_truenorth::{
    NeuroCoreBuilder, NeuronConfig, RateCode, ResetMode, SpikeCode, SpikeTarget, System,
    TrueNorthError,
};

/// Maximum inputs per deployed group (254 signed axon pairs + bias axon).
pub const MAX_GROUP_INPUTS: usize = 127;
/// Maximum outputs per deployed group (neurons per core).
pub const MAX_GROUP_OUTPUTS: usize = 256;

/// Core-count summary of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreCost {
    /// Cores the layer occupies.
    pub cores: usize,
    /// Axons in use on each core.
    pub axons_used: usize,
    /// Neurons in use on each core.
    pub neurons_used: usize,
}

/// Checks that a grouped dense layer fits the crossbar constraints.
///
/// # Errors
///
/// [`TrueNorthError::CrossbarOverflow`] naming the violated limit.
pub fn check_crossbar_fit(
    in_dim: usize,
    out_dim: usize,
    groups: usize,
) -> Result<CoreCost, TrueNorthError> {
    let in_g = in_dim / groups;
    let out_g = out_dim / groups;
    if in_g > MAX_GROUP_INPUTS {
        return Err(TrueNorthError::CrossbarOverflow {
            what: format!("group fan-in of {in_dim}/{groups} layer"),
            required: in_g,
            limit: MAX_GROUP_INPUTS,
        });
    }
    if out_g > MAX_GROUP_OUTPUTS {
        return Err(TrueNorthError::CrossbarOverflow {
            what: format!("group fan-out of {in_dim}/{groups} layer"),
            required: out_g,
            limit: MAX_GROUP_OUTPUTS,
        });
    }
    Ok(CoreCost { cores: groups, axons_used: 2 * in_g + 1, neurons_used: out_g })
}

/// Core count of a convolutional layer mapped topographically: every
/// output location needs physical neurons, `ceil(out_ch/groups × positions
/// / 256)` cores per group, with the filter support `2·(in_ch/groups)·k²`
/// bounded by the axon count.
///
/// # Errors
///
/// [`TrueNorthError::CrossbarOverflow`] when the filter support exceeds
/// the crossbar.
pub fn conv_core_cost(
    in_ch: usize,
    out_ch: usize,
    k: usize,
    groups: usize,
    out_h: usize,
    out_w: usize,
) -> Result<usize, TrueNorthError> {
    let icg = in_ch / groups;
    let ocg = out_ch / groups;
    let support = 2 * icg * k * k + 1;
    if support > 256 {
        return Err(TrueNorthError::CrossbarOverflow {
            what: format!("conv filter support (in {in_ch}/{groups} groups, k={k})"),
            required: support,
            limit: 256,
        });
    }
    let neurons = ocg * out_h * out_w;
    Ok(groups * neurons.div_ceil(256))
}

/// Total cores for a stack of dense layer shapes `(in, out, groups)`.
///
/// # Errors
///
/// Propagates the first fit failure.
pub fn network_core_count(layers: &[(usize, usize, usize)]) -> Result<usize, TrueNorthError> {
    let mut total = 0;
    for &(i, o, g) in layers {
        total += check_crossbar_fit(i, o, g)?.cores;
    }
    Ok(total)
}

/// One deployable group: the trinary weights, threshold scale and bias of
/// `out_local` neurons reading `in_local` inputs.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// First input index (within the layer) of this group.
    pub in_offset: usize,
    /// First output index of this group.
    pub out_offset: usize,
    /// Trinary weights `[out_local][in_local]`.
    pub weights: Vec<Vec<f32>>,
    /// Per-output scale (to become thresholds).
    pub alpha: Vec<f32>,
    /// Per-output bias.
    pub bias: Vec<f32>,
}

/// One deployable dense layer.
#[derive(Debug, Clone)]
pub struct DenseSpec {
    /// Input dimensionality.
    pub in_dim: usize,
    /// Output dimensionality.
    pub out_dim: usize,
    /// The layer's groups.
    pub groups: Vec<GroupSpec>,
    /// Permutation applied to this layer's *input* (`input[perm[i]]` feeds
    /// line `i`); identity when `None`.
    pub input_perm: Option<Vec<usize>>,
}

/// Extracts the deployable spec of a trained [`GroupedLinear`].
///
/// # Panics
///
/// Panics if the layer is not trinary — float layers have no hardware
/// realization.
pub fn linear_to_spec(layer: &GroupedLinear) -> DenseSpec {
    assert!(layer.is_trinary(), "only trinary layers deploy to hardware");
    let groups = layer.groups();
    let in_g = layer.in_dim() / groups;
    let out_g = layer.out_dim() / groups;
    let mut specs = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut weights: Vec<Vec<f32>> = (0..out_g)
            .map(|ol| (0..in_g).map(|il| layer.deployed_weight(g, ol, il)).collect())
            .collect();
        let mut alpha = layer.alpha()[g * out_g..(g + 1) * out_g].to_vec();
        // A hardware threshold is positive, so a negative trained scale
        // has no direct realization; fold its sign into the (symmetric)
        // trinary weight set: alpha·(w·x) = (−alpha)·((−w)·x).
        for (ol, a) in alpha.iter_mut().enumerate() {
            if *a < 0.0 {
                *a = -*a;
                for w in &mut weights[ol] {
                    *w = -*w;
                }
            }
        }
        specs.push(GroupSpec {
            in_offset: g * in_g,
            out_offset: g * out_g,
            weights,
            alpha,
            bias: layer.bias()[g * out_g..(g + 1) * out_g].to_vec(),
        });
    }
    DenseSpec { in_dim: layer.in_dim(), out_dim: layer.out_dim(), groups: specs, input_perm: None }
}

/// A trinary MLP compiled onto simulator cores.
#[derive(Debug)]
pub struct DeployedMlp {
    system: System,
    /// `(core handle index, axon pair base)` for each network input line.
    input_lines: Vec<Vec<(u32, u16)>>,
    /// Bias axon of every core: (core index, axon).
    bias_axons: Vec<(u32, u16)>,
    out_dim: usize,
    layers: usize,
}

/// The axon index carrying the always-on bias input.
const BIAS_AXON: u16 = 255;
/// Axon type for positive input copies.
const POS_TYPE: u8 = 0;
/// Axon type for negative input copies.
const NEG_TYPE: u8 = 1;
/// Axon type for the bias axon.
const BIAS_TYPE: u8 = 2;

impl DeployedMlp {
    /// Number of cores the deployment occupies.
    pub fn core_count(&self) -> usize {
        self.system.core_count()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Activity counters accumulated over every inference so far —
    /// input to activity-based power estimation.
    pub fn stats(&self) -> pcnn_truenorth::SystemStats {
        self.system.stats()
    }

    /// Runs one input through the deployed network under rate coding.
    ///
    /// The input is presented for `window` ticks (plus pipeline warm-up);
    /// the returned vector is each output's spike count divided by
    /// `window` — the decoded rate, comparable to the trained network's
    /// hard-sigmoid activations.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality or `window == 0`.
    pub fn infer(&mut self, x: &[f32], window: u32) -> Vec<f32> {
        assert_eq!(x.len(), self.input_lines.len(), "input dimensionality mismatch");
        assert!(window > 0, "window must be positive");
        let code = RateCode::new(window);
        // Pipeline latency: one tick per layer plus injection latency.
        let warmup = self.layers as u64 + 1;
        let total = u64::from(window) + warmup;
        self.system.reset_state();
        let start = self.system.now();
        let mut rng = rand::SeedableRng::seed_from_u64(7);
        for t in 0..total {
            // Inputs keep streaming (periodic continuation of the code).
            for (i, &v) in x.iter().enumerate() {
                if code.spike_at(v, (t % u64::from(window)) as u32, &mut rng) {
                    for &(core, axon_base) in &self.input_lines[i] {
                        let sign_axon = axon_base; // positive copy
                        self.system.inject(pcnn_truenorth::CoreHandle::from_index(core), sign_axon);
                        self.system
                            .inject(pcnn_truenorth::CoreHandle::from_index(core), sign_axon + 1);
                    }
                }
            }
            for &(core, axon) in &self.bias_axons {
                self.system.inject(pcnn_truenorth::CoreHandle::from_index(core), axon);
            }
            self.system.tick();
        }
        let counts: Vec<u32> = {
            let mut c = vec![0u32; self.out_dim];
            for (tick, pin) in self.system.drain_output_spikes() {
                // Ignore warm-up transients.
                if tick > start + warmup && (pin as usize) < self.out_dim {
                    c[pin as usize] += 1;
                }
            }
            c
        };
        counts.iter().map(|&c| (c as f32 / window as f32).min(1.0)).collect()
    }
}

/// Compiles a stack of trinary dense layers (with hard-sigmoid semantics
/// between them) into simulator cores.
///
/// # Errors
///
/// [`TrueNorthError::CrossbarOverflow`] when a group exceeds
/// [`MAX_GROUP_INPUTS`]/[`MAX_GROUP_OUTPUTS`].
///
/// # Panics
///
/// Panics if `specs` is empty or adjacent dimensions mismatch.
pub fn deploy_mlp(specs: &[DenseSpec]) -> Result<DeployedMlp, TrueNorthError> {
    assert!(!specs.is_empty(), "no layers to deploy");
    for pair in specs.windows(2) {
        assert_eq!(pair[0].out_dim, pair[1].in_dim, "layer dimension mismatch");
    }
    let mut system = System::new();
    let mut bias_axons = Vec::new();

    // First pass: create cores layer by layer, remembering (core, axon
    // base) for every input line of every layer.
    // layer_inputs[l][i] = list of (core idx, axon base) fed by line i of
    // layer l's input.
    let mut layer_inputs: Vec<Vec<Vec<(u32, u16)>>> = Vec::with_capacity(specs.len());
    // neuron_of[l][o] = (core idx, neuron idx) producing output o of layer l.
    let mut neuron_of: Vec<Vec<(u32, u16)>> = Vec::with_capacity(specs.len());

    let mut builders: Vec<NeuroCoreBuilder> = Vec::new();

    for (li, spec) in specs.iter().enumerate() {
        // Interior layers feed another crossbar: every value must reach
        // both the positive and the negative axon copy downstream, and a
        // hardware neuron has exactly one route — so interior outputs are
        // physically *duplicated* (a pos-routed and a neg-routed twin),
        // halving the per-core output capacity.
        let interior = li + 1 < specs.len();
        let out_limit = if interior { MAX_GROUP_OUTPUTS / 2 } else { MAX_GROUP_OUTPUTS };
        let mut inputs: Vec<Vec<(u32, u16)>> = vec![Vec::new(); spec.in_dim];
        let mut outputs: Vec<(u32, u16)> = vec![(0, 0); spec.out_dim];
        for group in &spec.groups {
            let in_g = group.weights.first().map_or(0, Vec::len);
            let out_g = group.weights.len();
            if in_g > MAX_GROUP_INPUTS {
                return Err(TrueNorthError::CrossbarOverflow {
                    what: "deployed group fan-in".to_owned(),
                    required: in_g,
                    limit: MAX_GROUP_INPUTS,
                });
            }
            if out_g > out_limit {
                return Err(TrueNorthError::CrossbarOverflow {
                    what: if interior {
                        "deployed interior group fan-out (pos/neg twins)".to_owned()
                    } else {
                        "deployed group fan-out".to_owned()
                    },
                    required: out_g,
                    limit: out_limit,
                });
            }
            let core_idx = builders.len() as u32;
            let mut b = NeuroCoreBuilder::new();
            // Axon types: even = positive copy, odd = negative copy.
            for il in 0..in_g {
                b.set_axon_type(2 * il, POS_TYPE);
                b.set_axon_type(2 * il + 1, NEG_TYPE);
            }
            b.set_axon_type(BIAS_AXON as usize, BIAS_TYPE);
            for (ol, row) in group.weights.iter().enumerate() {
                let alpha = group.alpha[ol].max(0.0);
                // Synaptic gain K spreads the threshold so alpha and bias
                // quantize finely: rate = (K·(w·x) + round(bias·T)) / T
                // with T = round(K/alpha) realizes hsig(alpha·(w·x)+bias).
                // K starts at 16 (fine quantization within the 9-bit LUT
                // range) but shrinks per neuron when a small alpha would
                // push the bias LUT entry past ±255.
                let mut gain = 16.0f32;
                while gain > 1.0 {
                    let t = if alpha > 1e-6 { (gain / alpha).round() } else { 1e6 };
                    if (group.bias[ol] * t).abs() <= 255.0 {
                        break;
                    }
                    gain /= 2.0;
                }
                let threshold = if alpha > 1e-6 {
                    (gain / alpha).round().clamp(1.0, 1_000_000.0) as i32
                } else {
                    1_000_000
                };
                let bias_weight =
                    (group.bias[ol] * threshold as f32).round().clamp(-255.0, 255.0) as i32;
                let cfg = NeuronConfig {
                    weights: [gain as i32, -(gain as i32), bias_weight, 0],
                    leak: 0,
                    threshold,
                    // Saturate one threshold below zero: sustained negative
                    // drive must not bank unbounded "debt", or the neuron
                    // would under-fire long after its input turns positive
                    // (the hard-sigmoid clamps at 0, not below).
                    floor: threshold,
                    reset: ResetMode::Linear,
                    reset_value: 0,
                    stochastic_mask: 0,
                };
                let copies: &[usize] = if interior { &[0, 1] } else { &[0] };
                for &copy in copies {
                    let neuron = if interior { 2 * ol + copy } else { ol };
                    b.set_neuron(neuron, cfg.clone());
                    if bias_weight != 0 {
                        b.connect(BIAS_AXON as usize, neuron);
                    }
                    for (il, &w) in row.iter().enumerate() {
                        if w > 0.5 {
                            b.connect(2 * il, neuron);
                        } else if w < -0.5 {
                            b.connect(2 * il + 1, neuron);
                        }
                    }
                }
                let first = if interior { 2 * ol } else { ol };
                outputs[group.out_offset + ol] = (core_idx, first as u16);
            }
            for il in 0..in_g {
                let line = match &spec.input_perm {
                    Some(p) => p[group.in_offset + il],
                    None => group.in_offset + il,
                };
                inputs[line].push((core_idx, (2 * il) as u16));
            }
            bias_axons.push((core_idx, BIAS_AXON));
            builders.push(b);
        }
        layer_inputs.push(inputs);
        neuron_of.push(outputs);
    }

    // Second pass: wire layer l outputs to layer l+1 inputs. A neuron has
    // exactly ONE route, so an interior value uses its pos/neg twins: the
    // first copy feeds the destination's positive axon (weight +1
    // synapses), the second its negative axon (weight −1 synapses).
    // Fan-out to several destination cores would need splitter cores;
    // block-diagonal groups guarantee a single destination.
    for l in 0..specs.len() {
        let final_layer = l + 1 == specs.len();
        for (o, &(core, neuron)) in neuron_of[l].iter().enumerate() {
            if final_layer {
                builders[core as usize]
                    .route_neuron(neuron as usize, SpikeTarget::output(o as u32));
                continue;
            }
            let dests = &layer_inputs[l + 1][o];
            assert!(
                dests.len() <= 1,
                "output line {o} of layer {l} fans out to {} cores; \
                 hardware neurons have a single route",
                dests.len()
            );
            let (pos_target, neg_target) = match dests.first() {
                Some(&(dc, da)) => (
                    SpikeTarget::Axon {
                        core: pcnn_truenorth::CoreHandle::from_index(dc),
                        axon: da,
                        delay: 1,
                    },
                    SpikeTarget::Axon {
                        core: pcnn_truenorth::CoreHandle::from_index(dc),
                        axon: da + 1,
                        delay: 1,
                    },
                ),
                // Dangling outputs (pruned lines) spike into the void.
                None => (SpikeTarget::output(u32::MAX), SpikeTarget::output(u32::MAX)),
            };
            builders[core as usize].route_neuron(neuron as usize, pos_target);
            builders[core as usize].route_neuron(neuron as usize + 1, neg_target);
        }
    }

    for b in &builders {
        system.add_core(b.build());
    }
    Ok(DeployedMlp {
        system,
        input_lines: layer_inputs.first().cloned().unwrap_or_default(),
        bias_axons,
        out_dim: specs.last().map_or(0, |s| s.out_dim),
        layers: specs.len(),
    })
}

/// Runs the software model of a spec stack (hard-sigmoid between layers,
/// and at the output) — the reference the deployment is validated against.
pub fn reference_forward(specs: &[DenseSpec], x: &[f32]) -> Vec<f32> {
    let mut act = x.to_vec();
    for spec in specs {
        let input: Vec<f32> = match &spec.input_perm {
            Some(p) => (0..spec.in_dim).map(|i| act[p[i]]).collect(),
            None => act.clone(),
        };
        let mut out = vec![0.0f32; spec.out_dim];
        for group in &spec.groups {
            for (ol, row) in group.weights.iter().enumerate() {
                let mut acc = 0.0;
                for (il, &w) in row.iter().enumerate() {
                    acc += w * input[group.in_offset + il];
                }
                out[group.out_offset + ol] =
                    (group.alpha[ol] * acc + group.bias[ol]).clamp(0.0, 1.0);
            }
        }
        act = out;
    }
    act
}

/// Validates a deployment against the software reference on a batch of
/// inputs, returning the mean absolute rate error.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn validate_deployment(
    specs: &[DenseSpec],
    deployed: &mut DeployedMlp,
    inputs: &Tensor,
    window: u32,
) -> f32 {
    assert!(inputs.shape()[0] > 0, "no validation inputs");
    let batch = inputs.shape()[0];
    let mut err = 0.0f32;
    let mut n = 0;
    for i in 0..batch {
        let x = inputs.row(i);
        let hw = deployed.infer(x, window);
        let sw = reference_forward(specs, x);
        for (a, b) in hw.iter().zip(&sw) {
            err += (a - b).abs();
            n += 1;
        }
    }
    err / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_check_limits() {
        assert!(check_crossbar_fit(127, 256, 1).is_ok());
        assert!(matches!(
            check_crossbar_fit(128, 256, 1),
            Err(TrueNorthError::CrossbarOverflow { .. })
        ));
        assert!(matches!(
            check_crossbar_fit(64, 512, 1),
            Err(TrueNorthError::CrossbarOverflow { .. })
        ));
        // Grouping fixes both.
        let cost = check_crossbar_fit(256, 512, 4).unwrap();
        assert_eq!(cost.cores, 4);
        assert_eq!(cost.neurons_used, 128);
    }

    #[test]
    fn conv_cost_counts_positions() {
        // 8 output channels over 10x10 positions = 800 neurons -> 4 cores.
        assert_eq!(conv_core_cost(4, 8, 3, 1, 10, 10).unwrap(), 4);
        // Too-large support fails.
        assert!(conv_core_cost(32, 8, 3, 1, 10, 10).is_err());
    }

    #[test]
    fn network_count_sums() {
        let n = network_core_count(&[(100, 256, 1), (256, 256, 4), (252, 18, 2)]).unwrap();
        assert_eq!(n, 7);
    }

    fn hand_spec() -> DenseSpec {
        // 2 inputs -> 2 outputs: y0 = hsig(0.5*(x0 - x1)), y1 = hsig(0.5*x1 + 0.25).
        DenseSpec {
            in_dim: 2,
            out_dim: 2,
            groups: vec![GroupSpec {
                in_offset: 0,
                out_offset: 0,
                weights: vec![vec![1.0, -1.0], vec![0.0, 1.0]],
                alpha: vec![0.5, 0.5],
                bias: vec![0.0, 0.25],
            }],
            input_perm: None,
        }
    }

    #[test]
    fn reference_forward_math() {
        let spec = hand_spec();
        let y = reference_forward(&[spec], &[1.0, 0.5]);
        assert!((y[0] - 0.25).abs() < 1e-6);
        assert!((y[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn deployed_single_layer_matches_reference() {
        let spec = hand_spec();
        let mut dep = deploy_mlp(std::slice::from_ref(&spec)).unwrap();
        assert_eq!(dep.core_count(), 1);
        let y = dep.infer(&[1.0, 0.5], 64);
        let r = reference_forward(std::slice::from_ref(&spec), &[1.0, 0.5]);
        for (a, b) in y.iter().zip(&r) {
            assert!((a - b).abs() < 0.1, "hw {a} vs sw {b}");
        }
    }

    #[test]
    fn deployed_two_layer_matches_reference() {
        let l1 = DenseSpec {
            in_dim: 2,
            out_dim: 4,
            groups: vec![GroupSpec {
                in_offset: 0,
                out_offset: 0,
                weights: vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, -1.0], vec![-1.0, 1.0]],
                alpha: vec![0.5; 4],
                bias: vec![0.0; 4],
            }],
            input_perm: None,
        };
        let l2 = DenseSpec {
            in_dim: 4,
            out_dim: 2,
            groups: vec![GroupSpec {
                in_offset: 0,
                out_offset: 0,
                weights: vec![vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 1.0]],
                alpha: vec![0.5, 1.0],
                bias: vec![0.1, 0.0],
            }],
            input_perm: None,
        };
        let specs = vec![l1, l2];
        let mut dep = deploy_mlp(&specs).unwrap();
        assert_eq!(dep.core_count(), 2);
        for x in [[0.8f32, 0.2], [0.1, 0.9], [0.5, 0.5]] {
            let hw = dep.infer(&x, 64);
            let sw = reference_forward(&specs, &x);
            for (a, b) in hw.iter().zip(&sw) {
                assert!((a - b).abs() < 0.12, "x {x:?}: hw {a} vs sw {b}");
            }
        }
    }

    #[test]
    fn trained_layer_exports_spec() {
        let layer = GroupedLinear::new(4, 2, 2, true, 3);
        let spec = linear_to_spec(&layer);
        assert_eq!(spec.groups.len(), 2);
        assert_eq!(spec.groups[1].in_offset, 2);
        assert_eq!(spec.groups[1].out_offset, 1);
        for g in &spec.groups {
            for row in &g.weights {
                for &w in row {
                    assert!(w == -1.0 || w == 0.0 || w == 1.0);
                }
            }
        }
    }

    #[test]
    fn oversized_group_rejected_at_deploy() {
        let spec = DenseSpec {
            in_dim: 200,
            out_dim: 1,
            groups: vec![GroupSpec {
                in_offset: 0,
                out_offset: 0,
                weights: vec![vec![1.0; 200]],
                alpha: vec![1.0],
                bias: vec![0.0],
            }],
            input_perm: None,
        };
        assert!(matches!(deploy_mlp(&[spec]), Err(TrueNorthError::CrossbarOverflow { .. })));
    }

    #[test]
    fn validate_deployment_reports_small_error() {
        let spec = hand_spec();
        let mut dep = deploy_mlp(std::slice::from_ref(&spec)).unwrap();
        let inputs = Tensor::from_rows(&[vec![0.9, 0.1], vec![0.3, 0.7], vec![0.5, 0.25]]);
        let err = validate_deployment(std::slice::from_ref(&spec), &mut dep, &inputs, 64);
        assert!(err < 0.08, "mean abs rate error {err}");
    }
}
