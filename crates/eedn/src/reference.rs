//! Golden-oracle reference implementations of the compute layer.
//!
//! These are the original naive loops that `Conv2d` and `GroupedLinear`
//! ran before the GEMM rewire, kept verbatim (bounds-checked taps,
//! `dy == 0` skip, identical accumulation order) as the semantic
//! contract the `pcnn-kernels` path is tested against:
//!
//! * forward outputs, `gw`, `galpha` and `gbias` must match the kernel
//!   path **bit for bit** (the GEMM preserves per-element sequential
//!   accumulation order, and padding/skip differences only contribute
//!   exact `±0.0` terms for finite inputs);
//! * only the convolution's `grad_in` is tolerance-bound
//!   (`|d| ≤ 1e-5 + 1e-5·|ref|`), because `col2im` reassociates the
//!   scatter over output channels and positions.
//!
//! All functions take *effective* (already trinary-projected, when
//! applicable) weights, so the oracle is independent of the shadow
//! weight mechanics. The `kernel_gemm` bench also times these loops to
//! measure the speedup.

use crate::tensor::Tensor;

/// The hyperparameters of one grouped convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel side.
    pub k: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub pad: usize,
    /// Channel groups (block-diagonal connectivity).
    pub groups: usize,
}

impl ConvSpec {
    /// Output spatial size for an `(h, w)` input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    #[inline]
    fn widx(&self, o: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((o * (self.in_ch / self.groups) + ic) * self.k + ky) * self.k + kx
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// ∂loss/∂input.
    pub grad_in: Tensor,
    /// Weight gradient, same layout as the weight vector.
    pub gw: Vec<f32>,
    /// Per-channel scale gradient.
    pub galpha: Vec<f32>,
    /// Per-channel bias gradient.
    pub gbias: Vec<f32>,
}

/// Naive grouped convolution forward: `(pre-scale, output)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_forward(
    spec: &ConvSpec,
    w_eff: &[f32],
    alpha: &[f32],
    bias: &[f32],
    input: &Tensor,
) -> (Tensor, Tensor) {
    assert_eq!(input.shape().len(), 4, "conv takes (batch, channels, h, w)");
    let (batch, cin, h, w) =
        (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    assert_eq!(cin, spec.in_ch, "input channel mismatch");
    let (ho, wo) = spec.out_size(h, w);
    let icg = spec.in_ch / spec.groups;
    let ocg = spec.out_ch / spec.groups;
    let mut pre = Tensor::zeros(&[batch, spec.out_ch, ho, wo]);
    for n in 0..batch {
        for g in 0..spec.groups {
            for ol in 0..ocg {
                let o = g * ocg + ol;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0;
                        for ic in 0..icg {
                            let c = g * icg + ic;
                            for ky in 0..spec.k {
                                let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..spec.k {
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += w_eff[spec.widx(o, ic, ky, kx)]
                                        * input.at4(n, c, iy as usize, ix as usize);
                                }
                            }
                        }
                        *pre.at4_mut(n, o, oy, ox) = acc;
                    }
                }
            }
        }
    }
    let mut out = pre.clone();
    for n in 0..batch {
        for o in 0..spec.out_ch {
            for oy in 0..ho {
                for ox in 0..wo {
                    *out.at4_mut(n, o, oy, ox) = alpha[o] * pre.at4(n, o, oy, ox) + bias[o];
                }
            }
        }
    }
    (pre, out)
}

/// Naive grouped convolution backward.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(
    spec: &ConvSpec,
    w_eff: &[f32],
    alpha: &[f32],
    input: &Tensor,
    pre: &Tensor,
    grad_out: &Tensor,
) -> ConvGrads {
    let (batch, _, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (ho, wo) = spec.out_size(h, w);
    assert_eq!(grad_out.shape(), &[batch, spec.out_ch, ho, wo], "grad shape mismatch");
    let icg = spec.in_ch / spec.groups;
    let ocg = spec.out_ch / spec.groups;
    let mut gw = vec![0.0f32; w_eff.len()];
    let mut galpha = vec![0.0f32; spec.out_ch];
    let mut gbias = vec![0.0f32; spec.out_ch];
    let mut grad_in = Tensor::zeros(input.shape());
    for n in 0..batch {
        for g in 0..spec.groups {
            for ol in 0..ocg {
                let o = g * ocg + ol;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let dy = grad_out.at4(n, o, oy, ox);
                        if dy == 0.0 {
                            continue;
                        }
                        galpha[o] += dy * pre.at4(n, o, oy, ox);
                        gbias[o] += dy;
                        let da = dy * alpha[o];
                        for ic in 0..icg {
                            let c = g * icg + ic;
                            for ky in 0..spec.k {
                                let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..spec.k {
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let wi = spec.widx(o, ic, ky, kx);
                                    gw[wi] += da * input.at4(n, c, iy as usize, ix as usize);
                                    *grad_in.at4_mut(n, c, iy as usize, ix as usize) +=
                                        da * w_eff[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    ConvGrads { grad_in, gw, galpha, gbias }
}

/// The hyperparameters of one grouped linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearSpec {
    /// Input dimensionality.
    pub in_dim: usize,
    /// Output dimensionality.
    pub out_dim: usize,
    /// Block-diagonal groups.
    pub groups: usize,
}

/// Gradients produced by [`grouped_linear_backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// ∂loss/∂input.
    pub grad_in: Tensor,
    /// Weight gradient, same layout as the weight vector.
    pub gw: Vec<f32>,
    /// Per-output scale gradient.
    pub galpha: Vec<f32>,
    /// Per-output bias gradient.
    pub gbias: Vec<f32>,
}

/// Naive grouped linear forward: `(pre-scale, output)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn grouped_linear_forward(
    spec: &LinearSpec,
    w_eff: &[f32],
    alpha: &[f32],
    bias: &[f32],
    input: &Tensor,
) -> (Tensor, Tensor) {
    assert_eq!(input.shape().len(), 2, "linear takes (batch, features)");
    assert_eq!(input.shape()[1], spec.in_dim, "input dim mismatch");
    let batch = input.shape()[0];
    let (in_g, out_g) = (spec.in_dim / spec.groups, spec.out_dim / spec.groups);
    let mut pre = Tensor::zeros(&[batch, spec.out_dim]);
    for n in 0..batch {
        let x = input.row(n);
        for g in 0..spec.groups {
            for ol in 0..out_g {
                let o = g * out_g + ol;
                let wbase = (g * out_g + ol) * in_g;
                let mut acc = 0.0;
                for il in 0..in_g {
                    acc += w_eff[wbase + il] * x[g * in_g + il];
                }
                *pre.at2_mut(n, o) = acc;
            }
        }
    }
    let mut out = Tensor::zeros(&[batch, spec.out_dim]);
    for n in 0..batch {
        for o in 0..spec.out_dim {
            *out.at2_mut(n, o) = alpha[o] * pre.at2(n, o) + bias[o];
        }
    }
    (pre, out)
}

/// Naive grouped linear backward.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn grouped_linear_backward(
    spec: &LinearSpec,
    w_eff: &[f32],
    alpha: &[f32],
    input: &Tensor,
    pre: &Tensor,
    grad_out: &Tensor,
) -> LinearGrads {
    let batch = input.shape()[0];
    assert_eq!(grad_out.shape(), &[batch, spec.out_dim], "grad shape mismatch");
    let (in_g, out_g) = (spec.in_dim / spec.groups, spec.out_dim / spec.groups);
    let mut gw = vec![0.0f32; w_eff.len()];
    let mut galpha = vec![0.0f32; spec.out_dim];
    let mut gbias = vec![0.0f32; spec.out_dim];
    let mut grad_in = Tensor::zeros(&[batch, spec.in_dim]);
    for n in 0..batch {
        let x = input.row(n);
        for g in 0..spec.groups {
            for ol in 0..out_g {
                let o = g * out_g + ol;
                let dy = grad_out.at2(n, o);
                if dy == 0.0 {
                    continue;
                }
                galpha[o] += dy * pre.at2(n, o);
                gbias[o] += dy;
                let da = dy * alpha[o];
                let wbase = (g * out_g + ol) * in_g;
                for il in 0..in_g {
                    gw[wbase + il] += da * x[g * in_g + il];
                    *grad_in.at2_mut(n, g * in_g + il) += da * w_eff[wbase + il];
                }
            }
        }
    }
    LinearGrads { grad_in, gw, galpha, gbias }
}
