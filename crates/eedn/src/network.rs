//! Sequential network composition and training loops.

use crate::layer::Layer;
use crate::loss::softmax_cross_entropy;
use crate::tensor::Tensor;
use pcnn_kernels::Scratch;

/// A stack of layers trained end to end.
///
/// The network owns one [`Scratch`] that every training-mode pass
/// threads through its layers, so steady-state training reuses packing
/// and column buffers instead of allocating per call.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    scratch: Scratch,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.iter().map(|l| l.name().to_owned()).collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequential {
    /// An empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new(), scratch: Scratch::default() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Shared access to the layer at `index`, for diagnostics and
    /// checkpointing (downcast via [`Layer::as_any`]).
    pub fn layer(&self, index: usize) -> Option<&dyn Layer> {
        self.layers.get(index).map(|l| l.as_ref())
    }

    /// The layer at `index` downcast to its concrete type, or `None` if
    /// the index is out of range or the layer is a different type.
    pub fn layer_as<T: 'static>(&self, index: usize) -> Option<&T> {
        self.layers.get(index).and_then(|l| l.as_any().downcast_ref::<T>())
    }

    /// Runs inference through shared references only, so a trained
    /// network can serve many threads at once. Bit-identical to the
    /// inference-mode forward pass.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut scratch = Scratch::default();
        self.infer_with(input, &mut scratch)
    }

    /// [`infer`](Sequential::infer) reusing caller-owned scratch buffers
    /// — the entry point for serving loops that process many inputs
    /// (each worker thread keeps its own `Scratch`). Bit-identical to
    /// [`infer`](Sequential::infer).
    pub fn infer_with(&self, input: &Tensor, scratch: &mut Scratch) -> Tensor {
        let pass = pcnn_trace::span(pcnn_trace::stages::EEDN_INFER);
        let mut x = input.clone();
        for layer in &self.layers {
            let _layer_span = pass.is_recording().then(|| pcnn_trace::span(layer.span_label()));
            x = layer.infer_with(&x, scratch);
        }
        x
    }

    /// Runs inference.
    pub fn predict(&self, input: &Tensor) -> Tensor {
        self.infer(input)
    }

    /// Forward in training mode (caches enabled).
    pub fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let pass = pcnn_trace::span(pcnn_trace::stages::EEDN_FORWARD);
        let mut x = input.clone();
        for layer in &mut self.layers {
            let _layer_span = pass.is_recording().then(|| pcnn_trace::span(layer.span_label()));
            x = layer.forward_with(&x, true, &mut self.scratch);
        }
        x
    }

    /// Backpropagates a loss gradient through the whole stack.
    pub fn backward(&mut self, grad: &Tensor) {
        let pass = pcnn_trace::span(pcnn_trace::stages::EEDN_BACKWARD);
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            let _layer_span = pass.is_recording().then(|| pcnn_trace::span(layer.span_label()));
            g = layer.backward_with(&g, &mut self.scratch);
        }
    }

    /// Applies one optimizer step everywhere.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        for layer in &mut self.layers {
            layer.step(lr, momentum);
        }
    }

    /// One classification training step; returns the batch loss.
    ///
    /// # Panics
    ///
    /// Panics on shape/label errors (see
    /// [`softmax_cross_entropy`]).
    pub fn train_step_classify(
        &mut self,
        input: &Tensor,
        labels: &[usize],
        lr: f32,
        momentum: f32,
    ) -> f32 {
        let logits = self.forward_train(input);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        self.backward(&grad);
        self.step(lr, momentum);
        loss
    }

    /// Classification accuracy over a rank-2 batch.
    pub fn accuracy(&self, input: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.predict(input);
        let batch = logits.shape()[0];
        let mut correct = 0;
        for (n, &label) in labels.iter().enumerate().take(batch) {
            let row = logits.row(n);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == label {
                correct += 1;
            }
        }
        correct as f32 / batch as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{HardSigmoid, Threshold};
    use crate::fc::GroupedLinear;
    use crate::permute::Permute;

    /// Two Gaussian blobs in 8 dimensions.
    fn blob_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let class = rng.random_bool(0.5) as usize;
            let center = if class == 1 { 0.8 } else { 0.2 };
            rows.push((0..8).map(|_| center + rng.random_range(-0.15..0.15)).collect());
            labels.push(class);
        }
        (Tensor::from_rows(&rows), labels)
    }

    #[test]
    fn float_mlp_learns_blobs() {
        let mut net = Sequential::new()
            .push(GroupedLinear::new(8, 16, 1, false, 1))
            .push(crate::activation::Relu::new())
            .push(GroupedLinear::new(16, 2, 1, false, 2));
        let (x, y) = blob_data(128, 10);
        for _ in 0..150 {
            net.train_step_classify(&x, &y, 0.1, 0.9);
        }
        assert!(net.accuracy(&x, &y) > 0.98);
    }

    #[test]
    fn trinary_threshold_net_learns_blobs() {
        // The full Eedn constraint stack: trinary weights + binary spiking
        // activation (STE surrogate) still learns an easy task.
        let mut net = Sequential::new()
            .push(GroupedLinear::new(8, 32, 1, true, 3))
            .push(Threshold::new())
            .push(GroupedLinear::new(32, 2, 1, true, 4));
        let (x, y) = blob_data(128, 11);
        for _ in 0..300 {
            net.train_step_classify(&x, &y, 0.02, 0.9);
        }
        let acc = net.accuracy(&x, &y);
        assert!(acc > 0.9, "trinary threshold accuracy {acc}");
    }

    #[test]
    fn grouped_net_with_permute_learns() {
        let mut net = Sequential::new()
            .push(GroupedLinear::new(8, 32, 4, true, 5))
            .push(HardSigmoid::new())
            .push(Permute::random(32, 6))
            .push(GroupedLinear::new(32, 2, 2, true, 7));
        let (x, y) = blob_data(128, 12);
        for _ in 0..300 {
            net.train_step_classify(&x, &y, 0.02, 0.9);
        }
        let acc = net.accuracy(&x, &y);
        assert!(acc > 0.9, "grouped accuracy {acc}");
    }

    #[test]
    fn parameter_count_sums_layers() {
        let net = Sequential::new()
            .push(GroupedLinear::new(4, 4, 1, false, 1))
            .push(GroupedLinear::new(4, 2, 1, false, 2));
        // 4*4 + 4 + 4 weights/alpha/bias, then 4*2 + 2 + 2.
        assert_eq!(net.parameter_count(), (16 + 4 + 4) + (8 + 2 + 2));
    }

    #[test]
    fn predict_is_stateless_wrt_training() {
        let net = Sequential::new().push(GroupedLinear::new(4, 2, 1, false, 9));
        let x = Tensor::from_rows(&[vec![1.0, 0.0, -1.0, 0.5]]);
        let a = net.predict(&x);
        let b = net.predict(&x);
        assert_eq!(a, b);
    }
}
