//! Crash-safe persistence for the PCNN workspace.
//!
//! Everything the workspace needs to survive a process death — trained
//! detectors ([`pcnn_core::DetectorSnapshot`]), per-epoch training
//! checkpoints ([`pcnn_core::EednCheckpoint`]), TrueNorth simulator
//! state (`pcnn_truenorth::SystemSnapshot`) — is written through one
//! [`envelope`] format:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PCNN"
//! 4       2     format version (little-endian; currently 1)
//! 6       2     reserved (zero)
//! 8       8     payload length in bytes (little-endian)
//! 16      4     CRC-32 (IEEE) of the payload (little-endian)
//! 20      n     payload: the value as JSON
//! ```
//!
//! Writes go to a temporary sibling file, are flushed with
//! `sync_all`, and are moved into place with an atomic rename — a
//! reader never observes a half-written checkpoint, and a crash
//! mid-write leaves the previous checkpoint intact. Reads verify the
//! magic, version, length and checksum before any decoding happens, so
//! truncation and bit rot surface as typed
//! [`Error::CorruptCheckpoint`](pcnn_core::Error::CorruptCheckpoint)
//! values rather than garbage state or panics.
//!
//! [`CheckpointDir`] layers an epoch-numbered naming convention on top,
//! giving training loops a resume-from-latest primitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod dir;
pub mod envelope;

pub use crc::crc32;
pub use dir::CheckpointDir;
pub use envelope::{load, save, FORMAT_VERSION, MAGIC};
