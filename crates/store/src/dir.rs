//! Epoch-numbered checkpoint directories for resumable training.

use crate::envelope;
use pcnn_core::{Error, Result};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A directory of per-epoch checkpoints named `epoch-NNNNN.ckpt`.
///
/// Training loops save one checkpoint per completed epoch; after a
/// crash, [`load_latest`](CheckpointDir::load_latest) finds the newest
/// *valid* file to resume from — a checkpoint that fails its envelope
/// checks (the one being written when the process died, say) is
/// skipped in favor of the next-newest rather than aborting the
/// resume.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Io { path: dir.display().to_string(), reason: e.to_string() })?;
        Ok(CheckpointDir { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// The file path used for epoch `epoch`.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("epoch-{epoch:05}.ckpt"))
    }

    /// Saves `value` as the checkpoint for `epoch` (crash-safely, via
    /// [`envelope::save`]).
    ///
    /// # Errors
    ///
    /// Propagates [`envelope::save`] failures.
    pub fn save<T: Serialize>(&self, epoch: usize, value: &T) -> Result<PathBuf> {
        let path = self.path_for(epoch);
        envelope::save(&path, value)?;
        Ok(path)
    }

    /// Epochs with a checkpoint file present, ascending. Files that do
    /// not match the `epoch-NNNNN.ckpt` pattern are ignored.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the directory cannot be listed.
    pub fn epochs(&self) -> Result<Vec<usize>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| Error::Io {
            path: self.dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let mut epochs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::Io {
                path: self.dir.display().to_string(),
                reason: e.to_string(),
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name.strip_prefix("epoch-").and_then(|n| n.strip_suffix(".ckpt"))
            {
                if let Ok(epoch) = digits.parse::<usize>() {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Loads the newest checkpoint that passes envelope verification,
    /// returning its epoch — or `None` when the directory holds no
    /// usable checkpoint at all. Corrupt files (a half-written
    /// temporary survivor, a bit-flipped payload) are skipped; an
    /// unreadable directory is still an error.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the directory cannot be listed.
    pub fn load_latest<T: Deserialize>(&self) -> Result<Option<(usize, T)>> {
        for &epoch in self.epochs()?.iter().rev() {
            if let Ok(value) = envelope::load::<T>(self.path_for(epoch)) {
                return Ok(Some((epoch, value)));
            }
        }
        Ok(None)
    }
}
