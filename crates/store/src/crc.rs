//! CRC-32 (IEEE 802.3) checksums.

/// Computes the CRC-32 (IEEE polynomial, reflected) of `data` — the
/// same checksum zlib, PNG and Ethernet use, so envelopes can be
/// verified with standard external tooling.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            // Branch-free reflected update: subtract 1-bit masks.
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"partitioned convolutional neural networks".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
