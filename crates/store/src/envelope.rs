//! The versioned, checksummed on-disk envelope.

use crate::crc::crc32;
use pcnn_core::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// The four magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 4] = *b"PCNN";

/// The newest envelope format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Envelope header size: magic + version + reserved + length + CRC.
const HEADER_LEN: usize = 4 + 2 + 2 + 8 + 4;

fn io_error(path: &Path, err: &std::io::Error) -> Error {
    Error::Io { path: path.display().to_string(), reason: err.to_string() }
}

fn corrupt(path: &Path, reason: impl Into<String>) -> Error {
    Error::CorruptCheckpoint { path: path.display().to_string(), reason: reason.into() }
}

/// Serializes `value` and writes it to `path` crash-safely: the
/// envelope is assembled in memory, written to a `.tmp` sibling,
/// flushed to disk, and atomically renamed over `path`. A crash at any
/// point leaves either the old file or the new one — never a mixture.
///
/// # Errors
///
/// [`Error::Io`] when the filesystem rejects any step;
/// [`Error::InvalidConfig`] when `value` cannot be serialized (a
/// non-finite float in a field the format requires, for example —
/// not reachable for the workspace's snapshot types).
pub fn save<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<()> {
    let span = pcnn_trace::span(pcnn_trace::stages::STORE_SAVE);
    let path = path.as_ref();
    let payload = serde_json::to_string(value)
        .map_err(|e| Error::InvalidConfig {
            what: "checkpoint payload".to_owned(),
            reason: e.to_string(),
        })?
        .into_bytes();

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0_u16.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    if span.is_recording() {
        span.add(pcnn_trace::Counter::Bytes, bytes.len() as u64);
    }

    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp).map_err(|e| io_error(&tmp, &e))?;
    file.write_all(&bytes).map_err(|e| io_error(&tmp, &e))?;
    file.sync_all().map_err(|e| io_error(&tmp, &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_error(path, &e))?;
    Ok(())
}

/// Reads and verifies an envelope written by [`save`], then decodes the
/// payload as a `T`.
///
/// # Errors
///
/// * [`Error::Io`] when the file cannot be read;
/// * [`Error::CorruptCheckpoint`] when the file is truncated, does not
///   open with the `PCNN` magic, declares a payload length other than
///   what is present, fails the CRC-32 check, or decodes to something
///   that is not a `T`;
/// * [`Error::UnsupportedVersion`] when the envelope was written by a
///   newer format than this build understands.
pub fn load<T: Deserialize>(path: impl AsRef<Path>) -> Result<T> {
    let span = pcnn_trace::span(pcnn_trace::stages::STORE_LOAD);
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| io_error(path, &e))?;
    if span.is_recording() {
        span.add(pcnn_trace::Counter::Bytes, bytes.len() as u64);
    }
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(
            path,
            format!("truncated header: {} bytes, need {HEADER_LEN}", bytes.len()),
        ));
    }
    if bytes[0..4] != MAGIC {
        return Err(corrupt(path, "bad magic (not a PCNN checkpoint)"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > FORMAT_VERSION {
        return Err(Error::UnsupportedVersion {
            path: path.display().to_string(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if version == 0 {
        return Err(corrupt(path, "format version 0 was never written"));
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let payload = &bytes[HEADER_LEN..];
    if declared != payload.len() as u64 {
        return Err(corrupt(
            path,
            format!("payload length mismatch: header says {declared}, found {}", payload.len()),
        ));
    }
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(corrupt(
            path,
            format!("crc mismatch: header says {stored_crc:#010x}, payload is {actual_crc:#010x}"),
        ));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| corrupt(path, format!("payload is not utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| corrupt(path, format!("payload does not decode: {e}")))
}
