//! Concurrent checkpoint-directory contract: readers calling
//! [`CheckpointDir::load_latest`] while a writer is saving new epochs
//! (atomic tmp-file rename) and corrupting old ones never observe a
//! torn file, never error, and never return a payload that disagrees
//! with its epoch — corruption only ever costs fallback depth, not
//! consistency. This is the store-side half of the cluster's
//! respawn-under-chaos guarantee.

use pcnn_store::CheckpointDir;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pcnn-store-conc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A payload whose contents encode its epoch, so a reader can detect
/// any mixture of two checkpoints.
fn payload(epoch: usize) -> Vec<u64> {
    (0..512).map(|i| epoch as u64 * 1_000_003 + i).collect()
}

/// Flips one mid-file byte, leaving the length intact: the CRC must
/// catch it.
fn corrupt(path: &PathBuf) {
    let mut bytes = std::fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn load_latest_is_consistent_under_concurrent_saves_and_corruption() {
    const EPOCHS: usize = 39;
    let root = scratch("load-vs-save");
    let dir = CheckpointDir::create(&root).unwrap();
    dir.save(1, &payload(1)).unwrap();

    let writing = AtomicBool::new(true);
    std::thread::scope(|scope| {
        // Readers hammer load_latest for the writer's whole run.
        for _ in 0..3 {
            scope.spawn(|| {
                let dir = CheckpointDir::create(&root).unwrap();
                let mut observed = 0usize;
                while writing.load(Ordering::Acquire) || observed == 0 {
                    let loaded = dir
                        .load_latest::<Vec<u64>>()
                        .expect("listing the directory must never fail mid-save");
                    let (epoch, value) = loaded.expect("epoch 1 is valid before the readers start");
                    assert_eq!(
                        value,
                        payload(epoch),
                        "epoch {epoch} returned a payload that is not its own: \
                         a torn or mixed read leaked through the envelope checks"
                    );
                    observed += 1;
                }
            });
        }
        // The writer saves new epochs as fast as it can, corrupting
        // every third one right after the rename lands.
        for epoch in 2..=EPOCHS {
            let path = dir.save(epoch, &payload(epoch)).unwrap();
            if epoch % 3 == 0 {
                corrupt(&path);
            }
        }
        writing.store(false, Ordering::Release);
    });

    // Steady state: the newest *valid* epoch wins; every corrupted one
    // is skipped, not fatal.
    let (epoch, value) = dir.load_latest::<Vec<u64>>().unwrap().expect("valid epochs remain");
    assert_eq!(
        epoch,
        EPOCHS - 1,
        "epoch {EPOCHS} is corrupt (divisible by 3), {} wins",
        EPOCHS - 1
    );
    assert_eq!(value, payload(epoch));
    assert_eq!(dir.epochs().unwrap().len(), EPOCHS, "corrupt files still exist on disk");

    std::fs::remove_dir_all(&root).ok();
}
