//! The corruption contract: every way a checkpoint file can be damaged
//! is rejected with the right typed [`Error`] — never a panic, never
//! silently-wrong state — and an intact detector round-trips through
//! disk bit-identically.

use pcnn_core::{Detector, Error, Extractor, TrainedDetector, WindowClassifier};
use pcnn_hog::BlockNorm;
use pcnn_store::{envelope, CheckpointDir, FORMAT_VERSION, MAGIC};
use pcnn_svm::{train, FeatureScaler, TrainConfig};
use pcnn_vision::GrayImage;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test, under the OS temp dir.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pcnn-store-test-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_detector() -> TrainedDetector {
    let extractor = Extractor::napprox_quantized(64, BlockNorm::None);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..30 {
        let crop = GrayImage::from_fn(64, 128, |x, y| {
            if i % 2 == 0 {
                // A vertical bright bar: the "pedestrian" class.
                if (24..40).contains(&x) {
                    0.9
                } else {
                    0.1
                }
            } else {
                ((x * 7 + y * 3 + i) % 13) as f32 / 13.0
            }
        });
        xs.push(extractor.crop_descriptor(&crop));
        ys.push(i % 2 == 0);
    }
    let scaler = FeatureScaler::fit(&xs);
    let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
    TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
}

#[test]
fn detector_roundtrips_through_disk_bit_identically() {
    let dir = scratch("roundtrip");
    let path = dir.join("detector.ckpt");
    let det = small_detector();

    envelope::save(&path, &det.to_snapshot()).unwrap();
    let restored = TrainedDetector::from_snapshot(&envelope::load(&path).unwrap()).unwrap();

    let scene = GrayImage::from_fn(160, 200, |x, y| {
        if (60..76).contains(&x) && (30..158).contains(&y) {
            0.9
        } else {
            ((x + y) % 11) as f32 / 22.0
        }
    });
    let engine = Detector::default();
    let a = engine.detect(&det, &scene);
    let b = engine.detect(&restored, &scene);
    assert_eq!(a.len(), b.len());
    for (da, db) in a.iter().zip(&b) {
        assert_eq!(da.score.to_bits(), db.score.to_bits(), "scores diverge");
        assert_eq!(da.bbox.x.to_bits(), db.bbox.x.to_bits());
        assert_eq!(da.bbox.y.to_bits(), db.bbox.y.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_an_io_error() {
    let dir = scratch("missing");
    let err = envelope::load::<pcnn_core::DetectorSnapshot>(dir.join("nope.ckpt")).unwrap_err();
    assert!(matches!(err, Error::Io { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_files_are_rejected() {
    let dir = scratch("trunc");
    let path = dir.join("value.ckpt");
    envelope::save(&path, &vec![1.5_f32, -2.25, 3.0]).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Every possible truncation point, including mid-header.
    for keep in 0..bytes.len() {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let err = envelope::load::<Vec<f32>>(&path).unwrap_err();
        assert!(
            matches!(err, Error::CorruptCheckpoint { .. }),
            "truncation to {keep} bytes gave {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_payload_bit_flip_is_rejected() {
    let dir = scratch("bitflip");
    let path = dir.join("value.ckpt");
    envelope::save(&path, &vec![10_u64, 20, 30]).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    for byte in 20..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[byte] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        let err = envelope::load::<Vec<u64>>(&path).unwrap_err();
        assert!(
            matches!(err, Error::CorruptCheckpoint { .. }),
            "payload flip at byte {byte} gave {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crc_and_length_tampering_are_rejected() {
    let dir = scratch("crc");
    let path = dir.join("value.ckpt");
    envelope::save(&path, &"hello".to_owned()).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Flip a stored-CRC bit.
    let mut bad_crc = bytes.clone();
    bad_crc[16] ^= 1;
    std::fs::write(&path, &bad_crc).unwrap();
    let err = envelope::load::<String>(&path).unwrap_err();
    assert!(matches!(err, Error::CorruptCheckpoint { .. }), "{err}");
    assert!(err.to_string().contains("crc"), "{err}");

    // Understate the payload length.
    let mut bad_len = bytes.clone();
    bad_len[8] ^= 1;
    std::fs::write(&path, &bad_len).unwrap();
    let err = envelope::load::<String>(&path).unwrap_err();
    assert!(matches!(err, Error::CorruptCheckpoint { .. }), "{err}");
    assert!(err.to_string().contains("length"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_is_rejected() {
    let dir = scratch("magic");
    let path = dir.join("value.ckpt");
    envelope::save(&path, &7_u32).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[0..4], &MAGIC);
    bytes[0..4].copy_from_slice(b"NNCP");
    std::fs::write(&path, &bytes).unwrap();
    let err = envelope::load::<u32>(&path).unwrap_err();
    assert!(matches!(err, Error::CorruptCheckpoint { .. }), "{err}");
    assert!(err.to_string().contains("magic"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn future_format_versions_are_rejected_with_the_version_error() {
    let dir = scratch("version");
    let path = dir.join("value.ckpt");
    envelope::save(&path, &7_u32).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4..6].copy_from_slice(&9_u16.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = envelope::load::<u32>(&path).unwrap_err();
    match err {
        Error::UnsupportedVersion { found, supported, .. } => {
            assert_eq!(found, 9);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn payload_type_mismatch_is_a_corrupt_checkpoint() {
    let dir = scratch("type");
    let path = dir.join("value.ckpt");
    envelope::save(&path, &vec![1_u32, 2, 3]).unwrap();
    // Valid envelope, wrong type: decoding must fail cleanly.
    let err = envelope::load::<pcnn_core::DetectorSnapshot>(&path).unwrap_err();
    assert!(matches!(err, Error::CorruptCheckpoint { .. }), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_dir_resumes_from_newest_valid_epoch() {
    let dir = scratch("dir");
    let ckpts = CheckpointDir::create(&dir).unwrap();
    for epoch in 1..=3 {
        ckpts.save(epoch, &format!("state-{epoch}")).unwrap();
    }
    assert_eq!(ckpts.epochs().unwrap(), vec![1, 2, 3]);
    assert_eq!(ckpts.load_latest::<String>().unwrap(), Some((3, "state-3".to_owned())));

    // Corrupt the newest checkpoint (the crash-mid-write scenario):
    // resume falls back to epoch 2 instead of failing.
    let newest = ckpts.path_for(3);
    let mut bytes = std::fs::read(&newest).unwrap();
    let cut = bytes.len() - 4;
    bytes.truncate(cut);
    std::fs::write(&newest, &bytes).unwrap();
    assert_eq!(ckpts.load_latest::<String>().unwrap(), Some((2, "state-2".to_owned())));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truenorth_snapshot_roundtrips_through_the_envelope() {
    use pcnn_truenorth::{NeuroCoreBuilder, NeuronConfig, SpikeTarget, System, SystemSnapshot};

    let dir = scratch("tn");
    let path = dir.join("system.ckpt");

    let mut sys = System::with_seed(0x5EED);
    let mut core = NeuroCoreBuilder::new();
    core.connect(0, 0);
    core.set_neuron(0, NeuronConfig::excitatory(&[1, 0, 0, 0], 2).with_leak(1));
    core.route_neuron(0, SpikeTarget::output(0));
    let c = sys.add_core(core.build());
    for _ in 0..9 {
        sys.inject(c, 0);
        sys.tick();
    }

    envelope::save(&path, &sys.snapshot()).unwrap();
    let snap: SystemSnapshot = envelope::load(&path).unwrap();
    let mut restored = System::from_snapshot(snap).unwrap();

    for _ in 0..9 {
        sys.inject(c, 0);
        restored.inject(c, 0);
        sys.tick();
        restored.tick();
    }
    assert_eq!(sys.drain_output_spikes(), restored.drain_output_spikes());
    std::fs::remove_dir_all(&dir).ok();
}
