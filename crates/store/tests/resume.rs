//! The kill-resume chaos harness: co-training is interrupted at a
//! pseudo-random epoch (simulating a process kill), resumed from the
//! newest on-disk checkpoint, and must land on **bit-identical** final
//! weights and detections — even when the newest checkpoint file was
//! corrupted and resume has to fall back to the one before it.

use pcnn_core::cotrain::{PartitionedSystem, TrainSetConfig};
use pcnn_core::pipeline::{Detector, TrainedDetector};
use pcnn_core::{EednCheckpoint, EednClassifierConfig, Extractor};
use pcnn_hog::BlockNorm;
use pcnn_store::CheckpointDir;
use pcnn_vision::{SynthConfig, SynthDataset};
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pcnn-resume-{}-{tag}-{n}", std::process::id()))
}

fn train_config() -> TrainSetConfig {
    TrainSetConfig { n_pos: 30, n_neg: 60, mining_scenes: 1, mining_rounds: 0 }
}

fn eedn_config() -> EednClassifierConfig {
    EednClassifierConfig { hidden1: 24, hidden2: 12, epochs: 5, ..Default::default() }
}

fn extractor() -> Extractor {
    Extractor::napprox_fp(BlockNorm::None)
}

/// One uninterrupted training run — the reference the resumed runs must
/// reproduce exactly.
fn uninterrupted(ds: &SynthDataset) -> TrainedDetector {
    PartitionedSystem::train_eedn_detector_with(
        extractor(),
        ds,
        train_config(),
        eedn_config(),
        None,
        |_| ControlFlow::Continue(()),
    )
    .expect("training succeeds")
}

/// Trains while persisting every epoch to `dir`, "crashing" (breaking
/// out) once `kill_after` epochs have completed.
fn train_until_killed(ds: &SynthDataset, dir: &CheckpointDir, kill_after: usize) {
    let _ = PartitionedSystem::train_eedn_detector_with(
        extractor(),
        ds,
        train_config(),
        eedn_config(),
        None,
        |ckpt| {
            dir.save(ckpt.epoch, ckpt).expect("checkpoint write succeeds");
            if ckpt.epoch >= kill_after {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    )
    .expect("interrupted training still returns cleanly");
}

/// Resumes from the newest valid checkpoint in `dir` and trains to
/// completion.
fn resume(ds: &SynthDataset, dir: &CheckpointDir) -> (usize, TrainedDetector) {
    let (epoch, ckpt): (usize, EednCheckpoint) =
        dir.load_latest().expect("checkpoint dir readable").expect("at least one checkpoint");
    let det = PartitionedSystem::train_eedn_detector_with(
        extractor(),
        ds,
        train_config(),
        eedn_config(),
        Some(&ckpt),
        |_| ControlFlow::Continue(()),
    )
    .expect("resumed training succeeds");
    (epoch, det)
}

/// Bit-exact equality via the canonical snapshot serialization: every
/// weight, Adam moment and scaler constant must match.
fn assert_bit_identical(a: &TrainedDetector, b: &TrainedDetector, what: &str) {
    let ja = serde_json::to_string(&a.to_snapshot()).unwrap();
    let jb = serde_json::to_string(&b.to_snapshot()).unwrap();
    assert_eq!(ja, jb, "{what}: snapshots differ");
}

#[test]
fn killed_and_resumed_training_is_bit_identical_to_uninterrupted() {
    let ds = SynthDataset::new(SynthConfig::default());
    let reference = uninterrupted(&ds);

    // "Random" kill epoch: varies across processes, deterministic
    // within one run, always mid-training (epochs run 1..=5).
    let kill_after = 1 + (std::process::id() as usize % 3);
    let dir = CheckpointDir::create(scratch("kill")).unwrap();
    train_until_killed(&ds, &dir, kill_after);
    assert_eq!(
        dir.epochs().unwrap(),
        (1..=kill_after).collect::<Vec<_>>(),
        "one checkpoint per completed epoch"
    );

    let (resumed_from, resumed) = resume(&ds, &dir);
    assert_eq!(resumed_from, kill_after, "resume picks the newest checkpoint");
    assert_bit_identical(&reference, &resumed, &format!("kill at epoch {kill_after}"));

    // Detections agree bit-for-bit too.
    let engine = Detector::default();
    let scene = ds.test_scene(0);
    let a = engine.detect(&reference, &scene.image);
    let b = engine.detect(&resumed, &scene.image);
    assert_eq!(a, b);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "detection scores must be bit-equal");
    }
    std::fs::remove_dir_all(dir.path()).ok();
}

#[test]
fn resume_falls_back_past_a_corrupted_checkpoint_and_still_matches() {
    let ds = SynthDataset::new(SynthConfig::default());
    let reference = uninterrupted(&ds);

    let kill_after = 3;
    let dir = CheckpointDir::create(scratch("corrupt")).unwrap();
    train_until_killed(&ds, &dir, kill_after);

    // The crash also mangled the newest checkpoint (torn write on a
    // filesystem without atomic rename, say): truncate it mid-payload.
    let newest = dir.path_for(kill_after);
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    // Resume rejects the damaged file, falls back to epoch 2, and the
    // per-epoch seed derivation still reproduces the reference exactly.
    let (resumed_from, resumed) = resume(&ds, &dir);
    assert_eq!(resumed_from, kill_after - 1, "corrupt newest checkpoint is skipped");
    assert_bit_identical(&reference, &resumed, "resume after corruption");
    std::fs::remove_dir_all(dir.path()).ok();
}
