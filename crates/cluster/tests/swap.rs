//! The blue/green swap contract: a model swap in the middle of a served
//! stream drops nothing and double-serves nothing. Every submitted
//! frame gets exactly one result, and that result is explainable — it
//! matches either the blue model's serial output or the green model's,
//! never a torn mixture.

use pcnn_cluster::{Cluster, ClusterConfig, StreamFrame};
use pcnn_core::pipeline::{Detector, TrainedDetector};
use pcnn_core::{Extractor, StreamId, WindowClassifier};
use pcnn_hog::BlockNorm;
use pcnn_runtime::{Backpressure, RuntimeConfig};
use pcnn_svm::{train, FeatureScaler, TrainConfig};
use pcnn_vision::{SynthConfig, SynthDataset};
use std::time::Duration;

/// A small SVM detector trained on NApprox full-precision features from
/// a seeded synthetic dataset — different seeds give models with
/// visibly different detection outputs.
fn detector_with(seed: u64) -> TrainedDetector {
    let ds = SynthDataset::new(SynthConfig { seed, ..SynthConfig::default() });
    let extractor = Extractor::napprox_fp(BlockNorm::L2);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..24 {
        xs.push(extractor.crop_descriptor(&ds.train_positive(i)));
        ys.push(true);
        xs.push(extractor.crop_descriptor(&ds.train_negative(i)));
        ys.push(false);
    }
    let scaler = FeatureScaler::fit(&xs);
    let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
    TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
}

fn cluster_config(shards: u32, workers: usize) -> ClusterConfig {
    ClusterConfig {
        shards,
        router_seed: 3,
        runtime: RuntimeConfig::builder()
            .workers(workers)
            .batch_size(2)
            .backpressure(Backpressure::Block)
            .build()
            .unwrap(),
        ..ClusterConfig::default()
    }
}

#[test]
fn mid_stream_swap_serves_every_frame_exactly_once() {
    let blue = detector_with(1);
    let green = detector_with(2);
    let blue_snap = blue.to_snapshot();
    let green_snap = green.to_snapshot();

    let ds = SynthDataset::new(SynthConfig::default());
    let scenes: Vec<_> = (0..4).map(|i| ds.test_scene(i).image.clone()).collect();
    let frames: Vec<StreamFrame> = (0..24)
        .map(|i| StreamFrame {
            stream: StreamId::new((i % 6) as u64),
            image: scenes[i % scenes.len()].clone(),
        })
        .collect();

    // Per-frame serial references for both models: any served result
    // must be bit-for-bit one of these two.
    let engine = Detector::default();
    let blue_ref: Vec<_> = frames.iter().map(|f| engine.detect(&blue, &f.image)).collect();
    let green_ref: Vec<_> = frames.iter().map(|f| engine.detect(&green, &f.image)).collect();
    assert_ne!(blue_ref, green_ref, "blue and green must be distinguishable for this test");

    let cluster = Cluster::new(&blue_snap, cluster_config(2, 2)).unwrap();
    let handle = cluster.handle();
    let results = std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            // Land the swap somewhere inside the serve; correctness below
            // does not depend on where.
            std::thread::sleep(Duration::from_millis(20));
            handle.swap_model(&green_snap).unwrap()
        });
        let results = cluster.serve(&frames);
        assert_eq!(swapper.join().unwrap(), 1, "first swap installs generation 1");
        results
    });

    // Exactly one result per submitted frame, none dropped.
    assert_eq!(results.len(), frames.len());
    for (i, result) in results.iter().enumerate() {
        let dets = result.as_ref().expect("a swap must not drop queued frames");
        assert!(
            dets == &blue_ref[i] || dets == &green_ref[i],
            "frame {i}: served output matches neither the blue nor the green model"
        );
    }

    // Every shard finished the roll; the swap is visible in the report.
    let report = cluster.report();
    assert_eq!(report.swaps, 1);
    for shard in &report.shards {
        assert_eq!(shard.generation, 1, "shard {} never installed generation 1", shard.shard);
        assert_eq!(shard.swaps, 1);
    }
    assert_eq!(report.frames_shed, 0, "Block backpressure sheds nothing");
    assert_eq!(report.aggregate.frames_served, frames.len() as u64);

    // After the roll, the tier serves pure green.
    for (i, frame) in frames.iter().take(4).enumerate() {
        assert_eq!(
            cluster.detect(frame.stream, &frame.image).unwrap(),
            green_ref[i],
            "post-swap frame {i} not served by the green model"
        );
    }
}

#[test]
fn repeated_swaps_advance_the_generation_monotonically() {
    let detector = detector_with(5);
    let snap = detector.to_snapshot();
    let cluster = Cluster::new(&snap, cluster_config(3, 1)).unwrap();
    assert_eq!(cluster.swap_model(&snap).unwrap(), 1);
    assert_eq!(cluster.swap_model(&snap).unwrap(), 2);
    let report = cluster.report();
    assert_eq!(report.swaps, 2);
    for shard in &report.shards {
        assert_eq!(shard.generation, 2);
        assert_eq!(shard.swaps, 2);
    }
}
