//! Router contracts: the degenerate single-shard cluster, minimal
//! disruption under drain/restore, serde round-tripping and — most
//! importantly — a golden hash-stability table. The rendezvous mixer is
//! a wire-format-grade constant: if these assignments ever change, a
//! release would silently re-route every live stream.

use pcnn_cluster::ShardRouter;
use std::collections::BTreeMap;

#[test]
fn single_shard_cluster_routes_everything_to_it() {
    let router = ShardRouter::new(1, 0xfeed).unwrap();
    for stream in 0..512u64 {
        assert_eq!(router.route(stream), 0);
    }
    assert_eq!(router.active(), vec![0]);
    // The only shard can never leave the rotation.
    let mut router = router;
    assert!(router.drain(0).is_err());
    assert_eq!(router.route(7), 0);
}

#[test]
fn drain_moves_only_the_drained_shards_streams() {
    let mut router = ShardRouter::new(4, 99).unwrap();
    let before: BTreeMap<u64, u32> = (0..600u64).map(|s| (s, router.route(s))).collect();
    router.drain(2).unwrap();
    let mut moved = 0usize;
    for (&stream, &shard) in &before {
        let now = router.route(stream);
        if shard == 2 {
            // Displaced streams must land on a surviving shard.
            assert_ne!(now, 2, "stream {stream} still routes to the drained shard");
            moved += 1;
        } else {
            // Minimal disruption: every other stream keeps its shard.
            assert_eq!(now, shard, "stream {stream} moved although its shard never drained");
        }
    }
    assert!(moved > 0, "a quarter of 600 streams should have lived on shard 2");
    // Restore is a true inverse: weights never changed, so the original
    // streams come home and nothing else moves.
    router.restore(2).unwrap();
    for (&stream, &shard) in &before {
        assert_eq!(router.route(stream), shard, "stream {stream} not restored");
    }
}

/// The golden hash-stability table. These assignments are a contract:
/// they pin the splitmix64-based rendezvous mixer so a refactor cannot
/// silently re-shuffle stream placement across a release boundary. If
/// this test fails, the router's hash changed — that is a breaking
/// change to every deployed cluster, not a test to update casually.
#[test]
fn golden_hash_stability() {
    let router = ShardRouter::new(4, 0xDAC17).unwrap();
    let expected: [u32; 16] = [3, 3, 1, 1, 2, 0, 0, 2, 2, 1, 0, 0, 3, 2, 1, 1];
    for (stream, &shard) in expected.iter().enumerate() {
        assert_eq!(
            router.route(stream as u64),
            shard,
            "stream {stream}: rendezvous mixer output changed"
        );
    }
    let wide = ShardRouter::new(8, 0).unwrap();
    let expected_wide: [u32; 12] = [0, 5, 0, 4, 1, 0, 4, 3, 5, 0, 6, 7];
    for (stream, &shard) in expected_wide.iter().enumerate() {
        assert_eq!(
            wide.route(stream as u64),
            shard,
            "stream {stream} (8-shard): rendezvous mixer output changed"
        );
    }
}

#[test]
fn router_round_trips_through_serde_with_drain_state() {
    let mut router = ShardRouter::new(6, 0xabc).unwrap();
    router.drain(4).unwrap();
    router.drain(1).unwrap();
    let json = serde_json::to_string(&router).unwrap();
    let back: ShardRouter = serde_json::from_str(&json).unwrap();
    assert_eq!(back, router);
    assert_eq!(back.active(), vec![0, 2, 3, 5]);
    for stream in 0..200u64 {
        assert_eq!(back.route(stream), router.route(stream));
    }
}
