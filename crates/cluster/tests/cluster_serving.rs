//! Cluster serving contracts: sharded output is bit-identical to a
//! single serial detector at any worker count, warm start resumes from
//! the newest checkpoint, Reject backpressure sheds at the cluster edge
//! with honest accounting, and the cluster report aggregates every
//! shard.

use pcnn_cluster::{Cluster, ClusterConfig, StreamFrame};
use pcnn_core::pipeline::{Detector, TrainedDetector};
use pcnn_core::{Error, Extractor, StreamId, WindowClassifier};
use pcnn_hog::BlockNorm;
use pcnn_runtime::{Backpressure, RuntimeConfig};
use pcnn_store::CheckpointDir;
use pcnn_svm::{train, FeatureScaler, TrainConfig};
use pcnn_vision::{SynthConfig, SynthDataset};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test, under the OS temp dir.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pcnn-cluster-test-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn detector_with(seed: u64) -> TrainedDetector {
    let ds = SynthDataset::new(SynthConfig { seed, ..SynthConfig::default() });
    let extractor = Extractor::napprox_fp(BlockNorm::L2);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..24 {
        xs.push(extractor.crop_descriptor(&ds.train_positive(i)));
        ys.push(true);
        xs.push(extractor.crop_descriptor(&ds.train_negative(i)));
        ys.push(false);
    }
    let scaler = FeatureScaler::fit(&xs);
    let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
    TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
}

fn frames_for_test() -> Vec<StreamFrame> {
    let ds = SynthDataset::new(SynthConfig::default());
    let scenes: Vec<_> = (0..4).map(|i| ds.test_scene(i).image.clone()).collect();
    (0..12)
        .map(|i| StreamFrame {
            stream: StreamId::new((i % 5) as u64),
            image: scenes[i % scenes.len()].clone(),
        })
        .collect()
}

/// The cluster determinism contract: fixed router seed + fixed shard
/// count ⇒ per-stream results bit-identical to one serial detector, no
/// matter how many workers each shard runs.
#[test]
fn cluster_output_is_bit_identical_to_serial_at_any_worker_count() {
    let detector = detector_with(1);
    let snapshot = detector.to_snapshot();
    let frames = frames_for_test();
    let engine = Detector::default();
    let serial: Vec<_> = frames.iter().map(|f| engine.detect(&detector, &f.image)).collect();

    for workers in [1usize, 2, 4] {
        let config = ClusterConfig {
            shards: 3,
            router_seed: 7,
            runtime: RuntimeConfig::builder()
                .workers(workers)
                .backpressure(Backpressure::Block)
                .build()
                .unwrap(),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(&snapshot, config).unwrap();
        let results = cluster.serve(&frames);
        assert_eq!(results.len(), frames.len());
        for (i, result) in results.iter().enumerate() {
            let dets = result.as_ref().expect("Block backpressure never drops frames");
            assert_eq!(dets, &serial[i], "workers={workers}: frame {i} diverges from serial");
            for (a, b) in dets.iter().zip(&serial[i]) {
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "workers={workers}: frame {i} score bits differ"
                );
            }
        }
    }
}

#[test]
fn warm_start_resumes_from_the_newest_checkpoint() {
    let dir = CheckpointDir::create(scratch("warm")).unwrap();
    let stale = detector_with(1);
    let fresh = detector_with(2);
    dir.save(1, &stale.to_snapshot()).unwrap();
    dir.save(5, &fresh.to_snapshot()).unwrap();

    let config = ClusterConfig { shards: 2, ..ClusterConfig::default() };
    let cluster = Cluster::warm_start(&dir, config).unwrap();
    let scene = SynthDataset::new(SynthConfig::default()).test_scene(0);
    let expected = Detector::default().detect(&fresh, &scene.image);
    assert_eq!(
        cluster.detect(StreamId::new(0), &scene.image).unwrap(),
        expected,
        "warm start must serve the newest (epoch 5) snapshot"
    );
}

#[test]
fn warm_start_from_an_empty_directory_is_a_typed_error() {
    let dir = CheckpointDir::create(scratch("empty")).unwrap();
    let err = Cluster::warm_start(&dir, ClusterConfig::default()).unwrap_err();
    assert!(matches!(err, Error::MissingEntry { .. }), "got {err:?}");
}

#[test]
fn reject_backpressure_sheds_at_the_cluster_edge_with_honest_accounting() {
    let detector = detector_with(1);
    let snapshot = detector.to_snapshot();
    // One shard, one worker, a one-slot queue and Reject: the unpaced
    // feeder floods the queue far faster than detection drains it, so
    // some frames must shed.
    let config = ClusterConfig {
        shards: 1,
        router_seed: 0,
        runtime: RuntimeConfig::builder()
            .workers(1)
            .queue_capacity(1)
            .batch_size(1)
            .backpressure(Backpressure::Reject)
            .build()
            .unwrap(),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(&snapshot, config).unwrap();
    let frames: Vec<StreamFrame> =
        frames_for_test().into_iter().cycle().take(16).collect::<Vec<_>>();
    let results = cluster.serve(&frames);

    let engine = Detector::default();
    let served = results.iter().filter(|r| r.is_some()).count() as u64;
    let shed = results.iter().filter(|r| r.is_none()).count() as u64;
    assert!(shed > 0, "a one-slot Reject queue under flood must shed");
    assert!(served > 0, "shedding must not starve the queue entirely");
    for (i, result) in results.iter().enumerate() {
        if let Some(dets) = result {
            let expected = engine.detect(&detector, &frames[i].image);
            assert_eq!(dets, &expected, "served frame {i} diverges from serial");
        }
    }

    let report = cluster.report();
    assert_eq!(report.frames_routed, frames.len() as u64);
    assert_eq!(report.frames_shed, shed, "report.frames_shed disagrees with the None slots");
    assert_eq!(report.aggregate.frames_served, served);
}

#[test]
fn report_aggregates_every_shard() {
    let detector = detector_with(1);
    let snapshot = detector.to_snapshot();
    let config = ClusterConfig {
        shards: 3,
        router_seed: 11,
        runtime: RuntimeConfig::builder()
            .workers(2)
            .backpressure(Backpressure::Block)
            .build()
            .unwrap(),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(&snapshot, config).unwrap();
    let frames = frames_for_test();
    let results = cluster.serve(&frames);
    assert!(results.iter().all(Option::is_some));

    let report = cluster.report();
    assert_eq!(report.shards.len(), 3);
    let per_shard: u64 = report.shards.iter().map(|s| s.report.frames_served).sum();
    assert_eq!(per_shard, frames.len() as u64, "shard reports must cover every frame once");
    assert_eq!(report.aggregate.frames_served, per_shard, "aggregate != sum of shards");
    assert_eq!(report.frames_routed, frames.len() as u64);
    assert_eq!(report.frames_shed, 0);
    // Streams spread: with 5 streams over 3 shards at this seed, more
    // than one shard did work.
    let busy = report.shards.iter().filter(|s| s.report.frames_served > 0).count();
    assert!(busy > 1, "expected multiple shards to serve, got {busy}");
    // The merged batch-latency histogram carries one sample per batch.
    assert_eq!(
        report.aggregate.batch_latency.total(),
        report.aggregate.batches,
        "merged latency histogram lost samples"
    );
}
