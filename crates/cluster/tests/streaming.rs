//! Cluster streaming contracts: serving interleaved video streams
//! through the sharded tier is bit-identical to serving each stream on
//! a single server, cache reuse counters are conserved across the
//! shard boundary, and a model swap invalidates every shard's stream
//! caches so no frame is ever served from cells the old model
//! extracted.

use pcnn_cluster::{Cluster, ClusterConfig, StreamFrame, SwapPolicy};
use pcnn_core::pipeline::{Detector, TrainedDetector};
use pcnn_core::{Extractor, StreamId, WindowClassifier};
use pcnn_hog::BlockNorm;
use pcnn_runtime::{Backpressure, DetectionServer, RuntimeConfig};
use pcnn_svm::{train, FeatureScaler, TrainConfig};
use pcnn_vision::{GrayImage, SynthConfig, SynthDataset, TemporalConfig, VideoStream};

fn detector_with(seed: u64) -> TrainedDetector {
    let ds = SynthDataset::new(SynthConfig { seed, ..SynthConfig::default() });
    let extractor = Extractor::napprox_fp(BlockNorm::L2);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..24 {
        xs.push(extractor.crop_descriptor(&ds.train_positive(i)));
        ys.push(true);
        xs.push(extractor.crop_descriptor(&ds.train_negative(i)));
        ys.push(false);
    }
    let scaler = FeatureScaler::fit(&xs);
    let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
    TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
}

/// `per_stream` frames for each of `streams` video streams, interleaved
/// round-robin the way a camera mux would deliver them.
fn interleaved_streams(streams: u64, per_stream: u64) -> Vec<StreamFrame> {
    let sources: Vec<VideoStream> =
        (0..streams).map(|s| VideoStream::new(TemporalConfig::sparse_scene(s + 1))).collect();
    let mut frames = Vec::new();
    for t in 0..per_stream {
        for (s, source) in sources.iter().enumerate() {
            frames.push(StreamFrame {
                stream: StreamId::new(s as u64),
                image: source.render(t).image,
            });
        }
    }
    frames
}

fn cluster_config(shards: u32, workers: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .shards(shards)
        .router_seed(7)
        .workers(workers)
        .backpressure(Backpressure::Block)
        .build()
        .expect("valid cluster config")
}

#[test]
fn sharded_streaming_matches_a_single_server_per_stream() {
    let detector = detector_with(1);
    let snapshot = detector.to_snapshot();
    let frames = interleaved_streams(4, 4);

    // Reference: every stream served alone, in order, on one server.
    let config = RuntimeConfig::builder().workers(2).build().unwrap();
    let server = DetectionServer::new(Detector::default(), &detector, config).unwrap();
    let mut reference = Vec::new();
    for s in 0..4u64 {
        let handle = server.open_stream(StreamId::new(s));
        for frame in frames.iter().filter(|f| f.stream == StreamId::new(s)) {
            reference.push((frame.stream, server.detect_stream(&handle, &frame.image).unwrap()));
        }
    }

    let cluster = Cluster::new(&snapshot, cluster_config(3, 2)).unwrap();
    let results = cluster.serve_streams(&frames);
    assert_eq!(results.len(), frames.len());

    // Group the cluster's results back per stream (input order within a
    // stream is submission order) and compare whole outcomes —
    // detections, tracks and reuse counters all bit-equal.
    let mut clustered = Vec::new();
    for s in 0..4u64 {
        for (i, frame) in frames.iter().enumerate() {
            if frame.stream == StreamId::new(s) {
                let outcome = results[i]
                    .as_ref()
                    .expect("Block backpressure never sheds")
                    .as_ref()
                    .expect("healthy frames succeed");
                clustered.push((frame.stream, outcome.clone()));
            }
        }
    }
    assert_eq!(clustered, reference, "sharded streaming diverged from the single-server runs");

    // Conservation: the cluster report's totals equal the per-frame sums.
    let report = cluster.report();
    let reused: u64 = reference.iter().map(|(_, r)| r.cells_reused).sum();
    let recomputed: u64 = reference.iter().map(|(_, r)| r.cells_recomputed).sum();
    assert_eq!(report.cells_reused(), reused);
    assert_eq!(report.cells_recomputed(), recomputed);
    assert!(reused > 0, "a 4-frame sparse stream must reuse cells");
}

#[test]
fn detect_stream_is_bit_identical_to_cold_detection() {
    let detector = detector_with(2);
    let snapshot = detector.to_snapshot();
    let cluster = Cluster::new(&snapshot, cluster_config(2, 2)).unwrap();
    let engine = Detector::default();

    let source = VideoStream::new(TemporalConfig::crowded_scene(9));
    let stream = StreamId::new(40);
    for t in 0..4u64 {
        let frame: GrayImage = source.render(t).image;
        let cold = engine.detect(&detector, &frame);
        let warm = cluster.detect_stream(stream, &frame).unwrap();
        assert_eq!(warm.detections, cold, "frame {t} diverges from cold detect");
    }
}

#[test]
fn model_swap_invalidates_stream_caches_on_every_shard() {
    let blue = detector_with(1);
    let green = detector_with(2);
    let cluster = Cluster::new(&blue.to_snapshot(), cluster_config(2, 1)).unwrap();
    let engine = Detector::default();

    // Warm several streams so both shards hold cached state.
    let frame: GrayImage = VideoStream::new(TemporalConfig::static_scene(3)).render(0).image;
    let streams: Vec<StreamId> = (0..6u64).map(StreamId::new).collect();
    let mut grid_cells = 0;
    for &s in &streams {
        let cold = cluster.detect_stream(s, &frame).unwrap();
        grid_cells = cold.cells_recomputed;
        let warm = cluster.detect_stream(s, &frame).unwrap();
        assert_eq!(warm.cells_recomputed, 0, "identical frame must be served from cache");
    }

    cluster.swap_model(&green.to_snapshot()).unwrap();

    // The same pixels after the swap: the cache must not answer — every
    // cell recomputes under the new model, and the output matches the
    // green model's cold run, not the blue one's.
    let green_ref = engine.detect(&green, &frame);
    let blue_ref = engine.detect(&blue, &frame);
    for &s in &streams {
        let post = cluster.detect_stream(s, &frame).unwrap();
        assert_eq!(
            post.cells_recomputed, grid_cells,
            "stream {s}: swap left stale cells in the cache"
        );
        assert_eq!(post.detections, green_ref, "stream {s}: not served by the green model");
        if green_ref != blue_ref {
            assert_ne!(post.detections, blue_ref, "stream {s}: served stale blue output");
        }
    }
}

#[test]
fn parallel_swap_policy_installs_every_shard() {
    let detector = detector_with(5);
    let snap = detector.to_snapshot();
    let config = ClusterConfig::builder()
        .shards(3)
        .workers(1)
        .swap_policy(SwapPolicy::Parallel)
        .build()
        .unwrap();
    let cluster = Cluster::new(&snap, config).unwrap();
    assert_eq!(cluster.swap_model(&snap).unwrap(), 1);
    assert_eq!(cluster.swap_model(&snap).unwrap(), 2);
    let report = cluster.report();
    assert_eq!(report.swaps, 2);
    for shard in &report.shards {
        assert_eq!(shard.generation, 2);
        assert_eq!(shard.swaps, 2);
    }
}

#[test]
fn builder_rejects_degenerate_configs() {
    assert!(ClusterConfig::builder().shards(0).build().is_err());
    assert!(ClusterConfig::builder().stream_cache_capacity(0).build().is_err());
    assert!(ClusterConfig::builder().workers(0).build().is_err());
    let ok = ClusterConfig::builder().shards(2).stream_cache_capacity(8).build().unwrap();
    assert_eq!(ok.shards, 2);
    assert_eq!(ok.stream_cache_capacity, 8);
    assert_eq!(ok.swap, SwapPolicy::Rolling);
}

#[test]
fn stream_cache_eviction_costs_only_warmth() {
    let detector = detector_with(1);
    let config =
        ClusterConfig::builder().shards(1).workers(1).stream_cache_capacity(1).build().unwrap();
    let cluster = Cluster::new(&detector.to_snapshot(), config).unwrap();
    let frame: GrayImage = VideoStream::new(TemporalConfig::static_scene(3)).render(0).image;
    let engine = Detector::default();
    let reference = engine.detect(&detector, &frame);

    // Two streams fighting over a one-slot cache: every frame evicts the
    // other stream, so nothing is ever reused — but results stay exact.
    for round in 0..3 {
        for s in [StreamId::new(1), StreamId::new(2)] {
            let r = cluster.detect_stream(s, &frame).unwrap();
            assert_eq!(r.cells_reused, 0, "round {round} {s}: evicted stream reused cells");
            assert_eq!(r.detections, reference, "round {round} {s}: eviction changed output");
        }
    }
}
