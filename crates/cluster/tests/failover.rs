//! The self-healing contract, pinned under scripted chaos: a shard
//! killed (or stalled) mid-stream fails its streams over to the
//! survivors and respawns warm, and the tier still serves **every
//! accepted frame exactly once, bit-identical to the unfaulted run** —
//! trackers survive the migration, per-frame cell totals are conserved,
//! and the failover/respawn/retry counters are a pure function of the
//! chaos plan, not of worker counts or thread timing.

use pcnn_cluster::{ChaosEvent, ChaosPlan, Cluster, ClusterConfig, StreamFrame, StreamOutcome};
use pcnn_core::pipeline::TrainedDetector;
use pcnn_core::{DetectorSnapshot, Extractor, StreamId, WindowClassifier};
use pcnn_hog::BlockNorm;
use pcnn_runtime::{Backpressure, RetryPolicy, StreamFrameResult};
use pcnn_store::CheckpointDir;
use pcnn_svm::{train, FeatureScaler, TrainConfig};
use pcnn_vision::{SynthConfig, SynthDataset, TemporalConfig, VideoStream};
use std::time::Duration;

const STREAMS: u64 = 3;
const PER_STREAM: u64 = 5;
const SHARDS: u32 = 3;

fn detector_with(seed: u64) -> TrainedDetector {
    let ds = SynthDataset::new(SynthConfig { seed, ..SynthConfig::default() });
    let extractor = Extractor::napprox_fp(BlockNorm::L2);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..24 {
        xs.push(extractor.crop_descriptor(&ds.train_positive(i)));
        ys.push(true);
        xs.push(extractor.crop_descriptor(&ds.train_negative(i)));
        ys.push(false);
    }
    let scaler = FeatureScaler::fit(&xs);
    let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
    TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
}

fn interleaved_streams() -> Vec<StreamFrame> {
    let sources: Vec<VideoStream> =
        (0..STREAMS).map(|s| VideoStream::new(TemporalConfig::sparse_scene(s + 1))).collect();
    let mut frames = Vec::new();
    for t in 0..PER_STREAM {
        for (s, source) in sources.iter().enumerate() {
            frames.push(StreamFrame {
                stream: StreamId::new(s as u64),
                image: source.render(t).image,
            });
        }
    }
    frames
}

fn supervised_config(workers: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .shards(SHARDS)
        .router_seed(7)
        .workers(workers)
        .backpressure(Backpressure::Block)
        .retry(
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                deadline: None,
                jitter_pm: 0,
            }
            .with_jitter(500),
        )
        .stall_after(Duration::from_secs(5))
        .build()
        .expect("valid supervised config")
}

/// The unfaulted reference run: same config, same frames, no chaos.
fn reference_run(snapshot: &DetectorSnapshot, frames: &[StreamFrame]) -> Vec<StreamFrameResult> {
    let cluster = Cluster::new(snapshot, supervised_config(2)).unwrap();
    cluster
        .serve_streams(frames)
        .into_iter()
        .map(|r| r.expect("Block never sheds").expect("unfaulted frames succeed"))
        .collect()
}

/// A kill plan that provably fires: the victim is stream 0's shard
/// (guaranteed at least `PER_STREAM` frames), killed before its
/// `at_frame`-th frame; plus, when routing spreads streams over more
/// than one shard, a first-frame failure on a survivor to exercise the
/// retry path.
fn kill_plan(cluster: &Cluster, seed: u64) -> (ChaosPlan, u64) {
    let victim = cluster.route(StreamId::new(0));
    let at_frame = 1 + seed % 4;
    let mut plan =
        ChaosPlan::new(seed).with_event(ChaosEvent::KillShard { shard: victim, at_frame });
    let mut expected_retries = 0;
    if let Some(other) =
        (1..STREAMS).map(|s| cluster.route(StreamId::new(s))).find(|&shard| shard != victim)
    {
        plan = plan.with_event(ChaosEvent::FailFrame { shard: other, at_frame: 0 });
        expected_retries = 1;
    }
    (plan, expected_retries)
}

/// The acceptance gate: 3 seeds × {1, 2, 4} workers, a mid-stream shard
/// kill each — exactly-once, bit-identical, counters deterministic.
#[test]
fn killed_shard_fails_over_and_respawns_bit_identically() {
    let snapshot = detector_with(1).to_snapshot();
    let frames = interleaved_streams();
    let reference = reference_run(&snapshot, &frames);

    for seed in [3u64, 11, 42] {
        let mut counter_runs: Vec<(u64, u64, u64, u64)> = Vec::new();
        for workers in [1usize, 2, 4] {
            let cluster = Cluster::new(&snapshot, supervised_config(workers)).unwrap();
            let (plan, expected_retries) = kill_plan(&cluster, seed);
            let outcomes = cluster.serve_streams_with(&frames, Some(&plan));

            assert_eq!(outcomes.len(), frames.len());
            let mut redispatched_any = false;
            for (i, outcome) in outcomes.iter().enumerate() {
                let StreamOutcome::Served { result, redispatched, .. } = outcome else {
                    panic!("seed {seed} workers {workers} frame {i}: not served: {outcome:?}");
                };
                redispatched_any |= redispatched;
                // Exactly-once, bit-identical: detections and tracks
                // match the unfaulted run; the cache may run cold after
                // migration, but every cell is still accounted for.
                assert_eq!(
                    result.detections, reference[i].detections,
                    "seed {seed} workers {workers} frame {i}: detections diverged"
                );
                assert_eq!(
                    result.tracks, reference[i].tracks,
                    "seed {seed} workers {workers} frame {i}: tracks diverged (tracker lost in failover)"
                );
                assert_eq!(
                    result.cells_reused + result.cells_recomputed,
                    reference[i].cells_reused + reference[i].cells_recomputed,
                    "seed {seed} workers {workers} frame {i}: cell accounting leaked"
                );
            }
            assert!(redispatched_any, "seed {seed}: the kill must orphan at least one frame");

            let report = cluster.report();
            assert_eq!(report.respawns, 1, "seed {seed}: one kill, one respawn");
            assert!(report.failovers >= 1, "seed {seed}: victim held at least one stream");
            assert_eq!(report.retries, expected_retries, "seed {seed}: injected-failure retries");
            assert_eq!(report.frames_shed, 0, "Block backpressure never sheds");
            counter_runs.push((report.failovers, report.respawns, report.retries, report.stalls));
        }
        assert!(
            counter_runs.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: counters must not depend on worker count: {counter_runs:?}"
        );
    }
}

/// A stalled drainer is condemned by the watchdog and buried exactly
/// like a dead one: its unserved frames re-dispatch, its streams fail
/// over, the shard respawns — and the output is still bit-identical.
#[test]
fn stalled_shard_is_condemned_and_its_frames_rerouted() {
    let snapshot = detector_with(1).to_snapshot();
    let frames = interleaved_streams();
    let reference = reference_run(&snapshot, &frames);

    let mut config = supervised_config(2);
    config.supervision.stall_after = Duration::from_millis(300);
    let cluster = Cluster::new(&snapshot, config).unwrap();
    let victim = cluster.route(StreamId::new(0));
    let plan = ChaosPlan::new(5).with_event(ChaosEvent::StallShard {
        shard: victim,
        at_frame: 1,
        for_ms: 10_000,
    });
    let outcomes = cluster.serve_streams_with(&frames, Some(&plan));
    for (i, outcome) in outcomes.iter().enumerate() {
        let result = outcome.served().unwrap_or_else(|| panic!("frame {i}: {outcome:?}"));
        assert_eq!(result.detections, reference[i].detections, "frame {i}");
        assert_eq!(result.tracks, reference[i].tracks, "frame {i}");
    }
    let report = cluster.report();
    // A slow-but-healthy serve can also trip the watchdog (that heal is
    // harmless, the output above is still bit-identical), so the
    // counters are lower-bounded rather than exact here.
    assert!(report.stalls >= 1, "the watchdog must condemn the stalled lane");
    assert!(report.respawns >= 1, "a condemned shard respawns like a dead one");
    assert!(report.failovers >= 1);
}

/// With respawn disabled the victim stays drained: the survivors absorb
/// its streams for the rest of the run and still serve every frame.
#[test]
fn without_respawn_the_survivors_carry_the_dead_shards_streams() {
    let snapshot = detector_with(1).to_snapshot();
    let frames = interleaved_streams();
    let reference = reference_run(&snapshot, &frames);

    let mut config = supervised_config(2);
    config.supervision.respawn = false;
    let cluster = Cluster::new(&snapshot, config).unwrap();
    let victim = cluster.route(StreamId::new(0));
    let plan = ChaosPlan::new(9).with_event(ChaosEvent::KillShard { shard: victim, at_frame: 2 });
    let outcomes = cluster.serve_streams_with(&frames, Some(&plan));
    for (i, outcome) in outcomes.iter().enumerate() {
        let result = outcome.served().unwrap_or_else(|| panic!("frame {i}: {outcome:?}"));
        assert_eq!(result.detections, reference[i].detections, "frame {i}");
        assert_eq!(result.tracks, reference[i].tracks, "frame {i}");
    }
    let report = cluster.report();
    assert_eq!(report.respawns, 0, "respawn is disabled");
    assert!(report.failovers >= 1);
    assert!(
        report.shards[victim as usize].drained,
        "the dead shard must still be out of rotation at the end of the run"
    );
}

/// Chaos corrupts the newest checkpoint right before the respawn reads
/// it: the respawn falls back to the next-newest valid epoch and the
/// tier keeps serving. Both epochs hold the same snapshot, so output
/// stays bit-identical — what changes is which file the reload trusts.
#[test]
fn respawn_survives_a_corrupted_newest_checkpoint() {
    let snapshot = detector_with(1).to_snapshot();
    let frames = interleaved_streams();
    let reference = reference_run(&snapshot, &frames);

    let tmp = tempdir("pcnn-failover-corrupt");
    let dir = CheckpointDir::create(&tmp).unwrap();
    dir.save(1, &snapshot).unwrap();
    dir.save(2, &snapshot).unwrap();

    let cluster = Cluster::warm_start(&dir, supervised_config(2)).unwrap();
    let victim = cluster.route(StreamId::new(0));
    let plan = ChaosPlan::new(13)
        .with_event(ChaosEvent::KillShard { shard: victim, at_frame: 2 })
        .with_event(ChaosEvent::CorruptNewestCheckpoint);
    let outcomes = cluster.serve_streams_with(&frames, Some(&plan));
    for (i, outcome) in outcomes.iter().enumerate() {
        let result = outcome.served().unwrap_or_else(|| panic!("frame {i}: {outcome:?}"));
        assert_eq!(result.detections, reference[i].detections, "frame {i}");
        assert_eq!(result.tracks, reference[i].tracks, "frame {i}");
    }
    let report = cluster.report();
    assert_eq!(report.respawns, 1);
    // The respawn really did hit the corrupted epoch 2 and fall back:
    // the newest *valid* snapshot in the directory is now epoch 1.
    let (epoch, _) = dir.load_latest::<DetectorSnapshot>().unwrap().expect("epoch 1 survives");
    assert_eq!(epoch, 1, "epoch 2 must have been corrupted by the chaos plan");

    std::fs::remove_dir_all(&tmp).ok();
}

/// Old serialized configs and reports (pre-supervision) still load: the
/// new fields all default.
#[test]
fn supervision_fields_default_through_serde() {
    let config = supervised_config(2);
    let json = serde_json::to_string(&config).unwrap();
    let back: ClusterConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config, "full round-trip");

    let snapshot = detector_with(1).to_snapshot();
    let cluster = Cluster::new(&snapshot, supervised_config(1)).unwrap();
    let report = cluster.report();
    let json = serde_json::to_string(&report).unwrap();
    let back: pcnn_cluster::ClusterReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.respawns, report.respawns);
    assert_eq!(back.failovers, report.failovers);
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
