//! Cluster-level observability: per-shard reports plus their merged
//! aggregate, serializable for dashboards and the SLO harness.

use pcnn_runtime::{RuntimeReport, TraceSummary};
use serde::{Deserialize, Serialize};

/// One shard's slice of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard's index in the cluster.
    pub shard: u32,
    /// The generation of the model currently installed.
    pub generation: u64,
    /// Completed blue/green installs on this shard.
    pub swaps: u64,
    /// Whether the shard is currently out of the routing rotation.
    pub drained: bool,
    /// The shard's accumulated serving report.
    pub report: RuntimeReport,
}

/// A point-in-time summary of the whole serving tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Per-shard reports, by shard index.
    pub shards: Vec<ShardReport>,
    /// Every shard report merged through
    /// [`RuntimeReport::merge`]: counters summed, latency histograms
    /// combined bucket-wise, `workers` totalling the threads serving
    /// across the tier.
    pub aggregate: RuntimeReport,
    /// Frames accepted and routed to a shard queue.
    pub frames_routed: u64,
    /// Frames shed at the cluster edge by a full shard queue.
    pub frames_shed: u64,
    /// Completed cluster-wide blue/green swaps.
    pub swaps: u64,
    /// Streams migrated off a dead shard to a survivor (tracker state
    /// carried over, cache warmth rebuilt).
    #[serde(default)]
    pub failovers: u64,
    /// Dead or stalled shards respawned warm from the latest
    /// checkpoint (or the seed snapshot).
    #[serde(default)]
    pub respawns: u64,
    /// Failed frame attempts retried at the serving edge.
    #[serde(default)]
    pub retries: u64,
    /// Frames hedged to their failover shard when the primary blocked
    /// past half the deadline.
    #[serde(default)]
    pub hedges: u64,
    /// Frames whose deadline expired before any attempt could succeed.
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Shard serve loops condemned by the watchdog for heartbeat
    /// silence with work in flight.
    #[serde(default)]
    pub stalls: u64,
    /// Live per-stage tracing statistics, when a `pcnn_trace` tracer is
    /// installed (spans from every shard land in the same process-global
    /// tracer, so this is the tier-wide view).
    #[serde(default)]
    pub trace: Option<TraceSummary>,
}

impl ClusterReport {
    /// Frames served across every shard.
    pub fn frames_served(&self) -> u64 {
        self.aggregate.frames_served
    }

    /// Batches served below their shard's primary level (the live model
    /// failed its canary probe and the fallback floor served).
    pub fn degraded_batches(&self) -> u64 {
        self.aggregate.degraded_batches
    }

    /// Stream-cache cells reused across every shard (video serving).
    pub fn cells_reused(&self) -> u64 {
        self.aggregate.cells_reused
    }

    /// Stream-cache cells recomputed across every shard (video serving).
    pub fn cells_recomputed(&self) -> u64 {
        self.aggregate.cells_recomputed
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster report ({} shards, {} workers total)",
            self.shards.len(),
            self.aggregate.workers
        )?;
        writeln!(
            f,
            "  frames routed {:>8}   shed {:>6}   served {:>8}   swaps {:>3}",
            self.frames_routed, self.frames_shed, self.aggregate.frames_served, self.swaps
        )?;
        for shard in &self.shards {
            writeln!(
                f,
                "  shard {:>2}: gen {:>3}  swaps {:>3}  {:>8} frames  {:>6} batches{}",
                shard.shard,
                shard.generation,
                shard.swaps,
                shard.report.frames_served,
                shard.report.batches,
                if shard.drained { "  [drained]" } else { "" }
            )?;
        }
        let latency = &self.aggregate.batch_latency;
        if let (Some(p50), Some(p99)) = (latency.p50(), latency.p99()) {
            writeln!(
                f,
                "  batch latency: p50 {:.2}ms  p99 {:.2}ms",
                p50 as f64 / 1e3,
                p99 as f64 / 1e3
            )?;
        }
        if self.aggregate.cells_reused + self.aggregate.cells_recomputed > 0 {
            let total = self.aggregate.cells_reused + self.aggregate.cells_recomputed;
            writeln!(
                f,
                "  stream cache: {} cells reused, {} recomputed ({:.1}% hit)",
                self.aggregate.cells_reused,
                self.aggregate.cells_recomputed,
                100.0 * self.aggregate.cells_reused as f64 / total as f64
            )?;
        }
        if self.failovers + self.respawns + self.retries + self.stalls > 0 {
            writeln!(
                f,
                "  self-healing: {} failovers  {} respawns  {} retries  {} stalls",
                self.failovers, self.respawns, self.retries, self.stalls
            )?;
        }
        if self.hedges + self.deadline_exceeded > 0 {
            writeln!(
                f,
                "  deadlines: {} hedged  {} exceeded",
                self.hedges, self.deadline_exceeded
            )?;
        }
        if self.aggregate.degraded_batches > 0 {
            writeln!(
                f,
                "  degradation: {} batches / {} frames on the fallback floor",
                self.aggregate.degraded_batches, self.aggregate.degraded_frames
            )?;
        }
        Ok(())
    }
}
