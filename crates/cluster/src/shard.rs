//! One replica of the serving tier: an owned, swappable model behind a
//! drain-aware install protocol.
//!
//! A [`Shard`] owns its [`TrainedDetector`] (rebuilt from a
//! [`DetectorSnapshot`](pcnn_core::DetectorSnapshot) at warm start) and
//! serves batches through a per-batch [`DetectionServer`] so the model
//! reference never outlives the batch. The blue/green swap protocol:
//!
//! 1. every batch registers itself against the model *generation* it
//!    serves with before touching a frame;
//! 2. [`install`](Shard::install) publishes the new model first, then
//!    blocks until every batch registered under an **older** generation
//!    has finished — batches that start after publication use the new
//!    model immediately and never delay the drain;
//! 3. queued frames are untouched throughout, so a swap drops nothing:
//!    each frame is served by exactly one model generation.
//!
//! Health probing survives the swap because the canary reference is
//! captured once at install time ([`canary_reference`]) and carried on
//! the model, not re-baselined per batch — a fault that develops after
//! install still trips the probe and degrades the shard to its
//! fallback floor.

use pcnn_core::pipeline::{Detector, DetectorConfig, TrainedDetector};
use pcnn_core::{Error, StreamId};
use pcnn_runtime::{
    canary_reference, DetectionServer, FallbackChain, Metrics, RuntimeConfig, RuntimeReport,
    ServiceLevel, StreamFrameResult, StreamSnapshot, StreamState,
};
use pcnn_vision::{Detection, GrayImage};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// An installed model: the detector plus the healthy canary histograms
/// captured at install time and the generation that installed it.
#[derive(Debug)]
pub struct ShardModel {
    detector: TrainedDetector,
    canaries: Vec<Vec<f32>>,
    generation: u64,
}

impl ShardModel {
    /// Wraps `detector` as generation `generation`, capturing its
    /// healthy canary reference now.
    pub fn new(detector: TrainedDetector, generation: u64) -> Self {
        let canaries = canary_reference(&detector);
        ShardModel { detector, canaries, generation }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &TrainedDetector {
        &self.detector
    }

    /// The install generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The service level this model serves as, probing against the
    /// install-time canary reference.
    fn level(&self) -> ServiceLevel<'_> {
        let label = self.detector.extractor.kind().label();
        ServiceLevel::with_reference(label, &self.detector, self.canaries.clone())
    }
}

/// Mutable shard state: the live model and, per model generation, how
/// many batches are currently in flight under it.
#[derive(Debug)]
struct ShardState {
    model: Arc<ShardModel>,
    in_flight: BTreeMap<u64, usize>,
}

/// Per-stream temporal state owned by the shard, bounded by an LRU cap
/// so an unbounded stream-id space cannot grow shard memory without
/// limit.
#[derive(Debug)]
struct StreamStore {
    states: BTreeMap<u64, (u64, StreamState)>,
    tick: u64,
    capacity: usize,
}

impl StreamStore {
    fn new(capacity: usize) -> Self {
        StreamStore { states: BTreeMap::new(), tick: 0, capacity }
    }

    /// Removes the stream's state (creating fresh state for an unseen —
    /// or evicted — stream). The caller runs the frame outside the
    /// store lock and puts the state back with [`put`](StreamStore::put).
    fn take(&mut self, stream: StreamId) -> StreamState {
        match self.states.remove(&stream.raw()) {
            Some((_, state)) => state,
            None => StreamState::new(stream),
        }
    }

    /// Returns a stream's state after a frame, evicting the least
    /// recently used stream when over capacity. Eviction costs only
    /// warmth: an evicted stream's next frame runs cold and re-tracks.
    fn put(&mut self, stream: StreamId, state: StreamState) {
        self.tick += 1;
        self.states.insert(stream.raw(), (self.tick, state));
        while self.states.len() > self.capacity {
            let oldest = self
                .states
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(&id, _)| id)
                .expect("non-empty over-capacity store");
            self.states.remove(&oldest);
        }
    }

    /// Drops every stream's cached pixels (trackers keep their
    /// identity) — called when a new model generation installs.
    fn invalidate(&mut self) {
        for (_, state) in self.states.values_mut() {
            state.invalidate();
        }
    }

    /// Removes one stream's state as a migratable snapshot (tracker
    /// only — cache warmth is not portable), or `None` when the shard
    /// holds no state for it.
    fn take_snapshot(&mut self, stream: StreamId) -> Option<StreamSnapshot> {
        self.states.remove(&stream.raw()).map(|(_, state)| state.snapshot())
    }

    /// Removes every stream's state as migratable snapshots, in
    /// ascending stream-id order (deterministic for a given store
    /// content, whatever order the streams were served in).
    fn drain_snapshots(&mut self) -> Vec<StreamSnapshot> {
        let states = std::mem::take(&mut self.states);
        states.into_values().map(|(_, state)| state.snapshot()).collect()
    }

    /// Installs a migrated stream's state (cold cache, live tracker),
    /// subject to the same LRU cap as served frames.
    fn install(&mut self, snapshot: StreamSnapshot) {
        let stream = snapshot.id;
        self.put(stream, StreamState::from_snapshot(snapshot));
    }
}

/// One serving replica: an owned model, a worker pool configuration and
/// accumulated metrics.
#[derive(Debug)]
pub struct Shard {
    id: u32,
    state: Mutex<ShardState>,
    batch_done: Condvar,
    /// A shared always-works floor, probed after the live model.
    fallback: Option<Arc<ShardModel>>,
    config: RuntimeConfig,
    engine: DetectorConfig,
    report: Mutex<RuntimeReport>,
    swaps: AtomicU64,
    streams: Mutex<StreamStore>,
}

impl Shard {
    /// A shard serving `detector` (as generation 0) under the given
    /// runtime and engine configuration, caching temporal state for up
    /// to `stream_cache_capacity` streams.
    pub fn new(
        id: u32,
        detector: TrainedDetector,
        config: RuntimeConfig,
        engine: DetectorConfig,
        stream_cache_capacity: usize,
    ) -> Self {
        Shard {
            id,
            state: Mutex::new(ShardState {
                model: Arc::new(ShardModel::new(detector, 0)),
                in_flight: BTreeMap::new(),
            }),
            batch_done: Condvar::new(),
            fallback: None,
            config,
            engine,
            report: Mutex::new(Metrics::new().report(config.workers, None)),
            swaps: AtomicU64::new(0),
            streams: Mutex::new(StreamStore::new(stream_cache_capacity.max(1))),
        }
    }

    /// Registers a shared fallback floor, probed when the live model
    /// fails its canary check. Serving-tier construction only — the
    /// floor is fixed for the shard's lifetime.
    pub(crate) fn set_fallback(&mut self, fallback: Arc<ShardModel>) {
        self.fallback = Some(fallback);
    }

    /// The shard's index in the cluster.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Locks the model/in-flight state, recovering from poisoning: the
    /// invariants are a model `Arc` and a counter map, both valid after
    /// any panic mid-critical-section.
    fn lock_state(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Locks the report accumulator, recovering from poisoning.
    fn lock_report(&self) -> MutexGuard<'_, RuntimeReport> {
        self.report.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Locks the per-stream store, recovering from poisoning the way
    /// [`RequestQueue`](pcnn_runtime::RequestQueue) does. A panic while
    /// the lock is held (an injected chaos panic, an eviction bug)
    /// leaves a map and a tick counter — both structurally valid — and
    /// the worst a half-applied update can cost is cache warmth, which
    /// the caller's error path invalidates anyway. Poisoning must not
    /// permanently wedge every stream routed to this shard.
    fn lock_streams(&self) -> MutexGuard<'_, StreamStore> {
        self.streams.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The generation of the currently installed model.
    pub fn generation(&self) -> u64 {
        self.lock_state().model.generation
    }

    /// Completed model swaps.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// A snapshot of the shard's accumulated serving report.
    pub fn report(&self) -> RuntimeReport {
        self.lock_report().clone()
    }

    /// Streams with temporal state currently cached on this shard.
    pub fn cached_streams(&self) -> usize {
        self.lock_streams().states.len()
    }

    /// Removes one stream's migratable state (tracker, no cache) for
    /// failover to another shard, or `None` when this shard holds no
    /// state for it. Only call when no frame of the stream is in
    /// flight on this shard — the cluster's supervisor quiesces the
    /// stream first.
    pub fn take_stream_snapshot(&self, stream: StreamId) -> Option<StreamSnapshot> {
        self.lock_streams().take_snapshot(stream)
    }

    /// Removes every stream's migratable state, ascending by stream id
    /// — the bulk form used when this shard dies and its streams
    /// scatter to the survivors.
    pub fn take_stream_snapshots(&self) -> Vec<StreamSnapshot> {
        self.lock_streams().drain_snapshots()
    }

    /// Installs a stream's migrated state on this shard: the tracker
    /// resumes where the source shard left it, the cache starts cold
    /// and rebuilds warmth from the stream's next frame.
    pub fn install_stream_snapshot(&self, snapshot: StreamSnapshot) {
        self.lock_streams().install(snapshot);
    }

    /// Replaces the model after this shard's serve loop died (a panic
    /// escaped a drainer, or the watchdog condemned a stall): publishes
    /// `detector` as the next generation, discards stale in-flight
    /// registrations — the loop that made them is gone and can never
    /// deregister, so draining them like [`install`](Shard::install)
    /// would wait forever — and invalidates this shard's stream caches
    /// (only this shard's: survivors keep their warmth). Returns the
    /// new generation.
    pub fn respawn(&self, detector: TrainedDetector) -> u64 {
        let model = ShardModel::new(detector, 0);
        let mut state = self.lock_state();
        let generation = state.model.generation + 1;
        state.model = Arc::new(ShardModel { generation, ..model });
        state.in_flight.clear();
        drop(state);
        self.batch_done.notify_all();
        self.lock_streams().invalidate();
        generation
    }

    /// Installs `detector` as the next model generation and drains the
    /// previous one: publishes the new model immediately (so queued
    /// frames keep flowing), then blocks until every batch that started
    /// under an older generation has completed. Returns the new
    /// generation.
    ///
    /// Batches that begin *after* publication serve with the new model
    /// and never delay the drain, so install latency is bounded by the
    /// in-flight batches at the moment of publication — not by offered
    /// load.
    pub fn install(&self, detector: TrainedDetector) -> u64 {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SWAP);
        let model = ShardModel::new(detector, 0);
        let mut state = self.lock_state();
        let generation = state.model.generation + 1;
        state.model = Arc::new(ShardModel { generation, ..model });
        while state.in_flight.range(..generation).next().is_some() {
            state = self.batch_done.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(state);
        // Cached cell histograms and window scores were produced by the
        // old generation; they must never be served by the new one.
        // Trackers keep their identity — a swap changes the model, not
        // the scene.
        self.lock_streams().invalidate();
        self.swaps.fetch_add(1, Ordering::Relaxed);
        drop(span);
        generation
    }

    /// Serves one batch with the currently installed model, returning
    /// per-frame results in input order (worker panics isolated per
    /// frame, as in [`DetectionServer::detect_batch`]).
    pub fn run_batch(&self, frames: &[&GrayImage]) -> Vec<Result<Vec<Detection>, Error>> {
        if frames.is_empty() {
            return Vec::new();
        }
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SHARD_BATCH);
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, frames.len() as u64);
        }
        let model = {
            let mut state = self.lock_state();
            let generation = state.model.generation;
            *state.in_flight.entry(generation).or_insert(0) += 1;
            Arc::clone(&state.model)
        };
        let results = self.serve_with(&model, frames);
        let mut state = self.lock_state();
        let count = state.in_flight.get_mut(&model.generation).expect("registered generation");
        *count -= 1;
        if *count == 0 {
            state.in_flight.remove(&model.generation);
            self.batch_done.notify_all();
        }
        results
    }

    /// Serves one frame of a video stream with the currently installed
    /// model, using (and updating) the stream's temporal cache and
    /// tracker owned by this shard. Frames of one stream must arrive in
    /// order — the cluster's per-shard drainer guarantees that.
    ///
    /// # Errors
    ///
    /// [`Error::WorkerPanic`] when a pipeline stage panicked; the
    /// stream's cache is invalidated so the next frame runs cold.
    pub fn run_stream_frame(
        &self,
        stream: StreamId,
        frame: &GrayImage,
    ) -> Result<StreamFrameResult, Error> {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SHARD_BATCH);
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, 1);
        }
        let model = {
            let mut state = self.lock_state();
            let generation = state.model.generation;
            *state.in_flight.entry(generation).or_insert(0) += 1;
            Arc::clone(&state.model)
        };
        // The stream's state leaves the store while its frame runs, so
        // a long frame never blocks other streams on the store lock.
        let mut stream_state = self.lock_streams().take(stream);

        let mut chain = FallbackChain::new().push_level(model.level());
        if let Some(fallback) = &self.fallback {
            chain = chain.push_level(fallback.level());
        }
        let server = DetectionServer::with_chain(Detector::new(self.engine), chain, self.config)
            .expect("shard config validated at cluster build");
        let result = server.detect_stream_state(&mut stream_state, frame);
        let batch_report = server.report(None);
        {
            let mut report = self.lock_report();
            *report = RuntimeReport { workers: self.config.workers, ..report.merge(&batch_report) };
        }
        self.lock_streams().put(stream, stream_state);

        let mut state = self.lock_state();
        if let Some(count) = state.in_flight.get_mut(&model.generation) {
            *count -= 1;
            if *count == 0 {
                state.in_flight.remove(&model.generation);
                self.batch_done.notify_all();
            }
        }
        drop(state);
        result
    }

    /// One batch through a transient [`DetectionServer`] built around
    /// `model` (and the fallback floor, when configured), with the
    /// batch's report merged into the shard accumulator.
    fn serve_with(
        &self,
        model: &ShardModel,
        frames: &[&GrayImage],
    ) -> Vec<Result<Vec<Detection>, Error>> {
        let mut chain = FallbackChain::new().push_level(model.level());
        if let Some(fallback) = &self.fallback {
            chain = chain.push_level(fallback.level());
        }
        let server = DetectionServer::with_chain(Detector::new(self.engine), chain, self.config)
            .expect("shard config validated at cluster build");
        let results = server.detect_batch(frames);
        let batch_report = server.report(None);
        let mut report = self.lock_report();
        // merge() sums `workers` (an aggregate over shards reports total
        // threads); within one shard the pool size is constant.
        *report = RuntimeReport { workers: self.config.workers, ..report.merge(&batch_report) };
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_core::{Extractor, WindowClassifier};
    use pcnn_hog::BlockNorm;
    use pcnn_svm::{train, FeatureScaler, TrainConfig};
    use pcnn_vision::{SynthConfig, SynthDataset, TemporalConfig, VideoStream};

    fn small_detector() -> TrainedDetector {
        let ds = SynthDataset::new(SynthConfig::default());
        let extractor = Extractor::napprox_fp(BlockNorm::L2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            xs.push(extractor.crop_descriptor(&ds.train_positive(i)));
            ys.push(true);
            xs.push(extractor.crop_descriptor(&ds.train_negative(i)));
            ys.push(false);
        }
        let scaler = FeatureScaler::fit(&xs);
        let model = train(&scaler.apply_all(&xs), &ys, TrainConfig::default());
        TrainedDetector { extractor, classifier: WindowClassifier::Svm { model, scaler } }
    }

    fn small_shard() -> Shard {
        Shard::new(0, small_detector(), RuntimeConfig::default(), DetectorConfig::default(), 8)
    }

    /// Regression for the poisoned stream-store lock: a panic while
    /// holding the store mutex (here: forced from another thread) used
    /// to wedge every later `run_stream_frame` on this shard with
    /// "shard stream lock" panics. The store must recover like the
    /// request queue does.
    #[test]
    fn stream_store_survives_a_poisoned_lock() {
        let shard = std::sync::Arc::new(small_shard());
        let stream = StreamId::new(3);
        let video = VideoStream::new(TemporalConfig::sparse_scene(1));
        let first = video.render(0).image;
        shard.run_stream_frame(stream, &first).expect("clean first frame");
        assert_eq!(shard.cached_streams(), 1);

        // Poison the store mutex: panic while holding it.
        let poisoner = std::sync::Arc::clone(&shard);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.streams.lock().unwrap();
            panic!("poison the stream store");
        });
        assert!(handle.join().is_err());
        assert!(shard.streams.lock().is_err(), "store mutex must actually be poisoned");

        // Every store entry point recovers instead of propagating.
        let second = video.render(1).image;
        let warm = shard.run_stream_frame(stream, &second).expect("poisoned store must recover");
        assert!(warm.cells_reused > 0, "state survived the poisoning, frame 2 runs warm");
        let snap = shard.take_stream_snapshot(stream).expect("state still present");
        shard.install_stream_snapshot(snap);
        assert_eq!(shard.cached_streams(), 1);
        assert_eq!(shard.take_stream_snapshots().len(), 1);
        assert_eq!(shard.cached_streams(), 0);
    }

    /// Respawn publishes a fresh generation, clears stale in-flight
    /// registrations (the dead loop can never deregister them) and
    /// invalidates only this shard's caches.
    #[test]
    fn respawn_clears_in_flight_and_bumps_generation() {
        let shard = small_shard();
        // Simulate a drainer that died between registering and
        // deregistering a batch under generation 0.
        shard.lock_state().in_flight.insert(0, 1);
        let generation = shard.respawn(small_detector());
        assert_eq!(generation, 1);
        assert_eq!(shard.generation(), 1);
        assert!(shard.lock_state().in_flight.is_empty(), "stale registrations discarded");
        // install() after a respawn must not hang on the stale count.
        let generation = shard.install(small_detector());
        assert_eq!(generation, 2);
    }
}
