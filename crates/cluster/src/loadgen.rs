//! Sustained load generation and SLO measurement for the cluster tier.
//!
//! The generator is **open loop**: arrival times come from a seeded
//! Poisson process fixed before the run, and the feeder submits each
//! frame at its scheduled instant whether or not the tier has kept up.
//! Closed-loop harnesses hide overload by slowing the offered rate to
//! match the server (coordinated omission); an open schedule keeps the
//! queueing delay of a falling-behind tier in the latency histogram,
//! which is the number an SLO is about.
//!
//! Latency is measured schedule-to-completion per frame and recorded in
//! the same fixed-bucket [`Histogram`] the runtime uses, so the p50/p99
//! the harness reports and the quantiles in a
//! [`RuntimeReport`](pcnn_runtime::RuntimeReport) come from one estimator
//! ([`pcnn_trace::quantile_from_buckets`]).

use crate::cluster::{Cluster, StreamFrame};
use pcnn_runtime::{Histogram, HistogramReport, LATENCY_BOUNDS_US};
use pcnn_vision::GrayImage;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters of the seeded open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Seed for arrival times and stream assignment. Same seed, same
    /// schedule — byte for byte.
    pub seed: u64,
    /// Distinct stream ids, drawn uniformly per arrival.
    pub streams: u32,
    /// Mean aggregate arrival rate in frames per second.
    pub rate_hz: f64,
    /// Total arrivals to generate.
    pub frames: usize,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile { seed: 0, streams: 8, rate_hz: 20.0, frames: 64 }
    }
}

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Scheduled submission time, microseconds from run start.
    pub at_us: u64,
    /// The stream this frame belongs to.
    pub stream: u64,
}

/// The deterministic arrival schedule for `profile`: exponential
/// inter-arrival gaps (a Poisson process at `rate_hz`) with the stream
/// drawn uniformly per arrival, all from one seeded generator.
///
/// # Panics
///
/// Panics when `rate_hz` is not strictly positive or `streams` is zero.
pub fn arrivals(profile: &LoadProfile) -> Vec<Arrival> {
    assert!(profile.rate_hz > 0.0, "arrival rate must be positive");
    assert!(profile.streams > 0, "need at least one stream");
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut at_s = 0.0f64;
    (0..profile.frames)
        .map(|_| {
            let unit: f64 = rng.random();
            // Inverse-CDF exponential draw; 1-unit is in (0, 1], so the
            // log argument never hits zero.
            at_s += -(1.0 - unit).ln() / profile.rate_hz;
            let stream = rng.random_range(0..u64::from(profile.streams));
            Arrival { at_us: (at_s * 1e6) as u64, stream }
        })
        .collect()
}

/// Latency budgets an SLO run is judged against, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloBudget {
    /// Median schedule-to-completion budget.
    pub p50_us: u64,
    /// Tail (99th percentile) budget.
    pub p99_us: u64,
    /// Highest tolerable shed fraction, in parts per million of the
    /// offered frames (0 = every frame must be served).
    pub shed_ppm: u64,
}

/// The outcome of one SLO load run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Frames offered by the schedule.
    pub offered: u64,
    /// Frames served to completion.
    pub served: u64,
    /// Frames shed at the cluster edge.
    pub shed: u64,
    /// Frames whose admission deadline expired with the primary and
    /// hedge queues both full (zero when no deadline is configured).
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Frames admitted only by hedging to their failover shard.
    #[serde(default)]
    pub hedged: u64,
    /// Frames served after at least one failed attempt was retried
    /// (stream runs under a chaos plan; zero on the batch path).
    #[serde(default)]
    pub retried_served: u64,
    /// Wall time of the run in seconds.
    pub wall_s: f64,
    /// Served throughput in frames per second.
    pub throughput_fps: f64,
    /// Measured median schedule-to-completion latency (µs).
    pub p50_us: Option<u64>,
    /// Measured 99th-percentile schedule-to-completion latency (µs).
    pub p99_us: Option<u64>,
    /// The full per-frame latency histogram.
    pub latency: HistogramReport,
    /// The budgets the run was judged against.
    pub budget: SloBudget,
    /// Whether every budget held.
    pub pass: bool,
}

impl std::fmt::Display for SloReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = |us: Option<u64>| us.map_or(f64::NAN, |us| us as f64 / 1e3);
        write!(
            f,
            "slo {}: {}/{} frames served ({} shed) in {:.2}s ({:.1} fps)  p50 {:.2}ms (budget {:.2})  p99 {:.2}ms (budget {:.2})",
            if self.pass { "PASS" } else { "FAIL" },
            self.served,
            self.offered,
            self.shed,
            self.wall_s,
            self.throughput_fps,
            ms(self.p50_us),
            self.budget.p50_us as f64 / 1e3,
            ms(self.p99_us),
            self.budget.p99_us as f64 / 1e3,
        )?;
        if self.deadline_exceeded + self.hedged + self.retried_served > 0 {
            write!(
                f,
                "  [{} deadline-exceeded, {} hedged, {} retried-then-served]",
                self.deadline_exceeded, self.hedged, self.retried_served
            )?;
        }
        Ok(())
    }
}

/// Runs `schedule` against `cluster` open loop and judges the measured
/// latency quantiles against `budget`.
///
/// `frame_for` supplies the image for each arrival (typically a small
/// pool of pre-rendered scenes indexed by stream); frames are cloned
/// into the submission order once, up front, so rendering cost never
/// pollutes the latency measurement.
pub fn run_slo<F>(
    cluster: &Cluster,
    schedule: &[Arrival],
    budget: SloBudget,
    mut frame_for: F,
) -> SloReport
where
    F: FnMut(&Arrival) -> GrayImage,
{
    let frames: Vec<StreamFrame> = schedule
        .iter()
        .map(|a| StreamFrame { stream: pcnn_core::StreamId::new(a.stream), image: frame_for(a) })
        .collect();
    let at_us: Vec<u64> = schedule.iter().map(|a| a.at_us).collect();
    let latency = Histogram::new(&LATENCY_BOUNDS_US);

    let start = Instant::now();
    let (results, edge) = cluster.serve_paced(&frames, Some(&at_us), Some(&latency));
    let wall_s = start.elapsed().as_secs_f64();

    let offered = schedule.len() as u64;
    let served = results.iter().filter(|r| r.is_some()).count() as u64;
    judge(
        offered,
        served,
        edge.shed,
        edge.deadline_exceeded,
        edge.hedges,
        0,
        wall_s,
        latency.snapshot(),
        budget,
    )
}

/// Runs a supervised *stream* serve under an optional chaos plan and
/// judges it like [`run_slo`] — the harness behind the chaos bench.
/// Frames are submitted as fast as the tier admits them (the stream
/// path's latency is dominated by queueing, which the per-frame deadline
/// already bounds); losses split into shed, deadline-exceeded and
/// retried-then-served, and all three land in the report.
pub fn run_stream_slo(
    cluster: &Cluster,
    frames: &[StreamFrame],
    budget: SloBudget,
    plan: Option<&crate::ChaosPlan>,
) -> SloReport {
    use crate::cluster::StreamOutcome;
    let latency = Histogram::new(&LATENCY_BOUNDS_US);
    let start = Instant::now();
    let outcomes = cluster.serve_streams_with(frames, plan);
    let wall_s = start.elapsed().as_secs_f64();
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut deadline_exceeded = 0u64;
    let mut retried_served = 0u64;
    for outcome in &outcomes {
        match outcome {
            StreamOutcome::Served { attempts, .. } => {
                served += 1;
                if *attempts > 1 {
                    retried_served += 1;
                }
            }
            StreamOutcome::Shed => shed += 1,
            StreamOutcome::DeadlineExceeded => deadline_exceeded += 1,
            StreamOutcome::Failed { .. } => {}
        }
    }
    // The stream path has no schedule; spread the wall time over the
    // served frames so the histogram still carries a meaningful p50/p99.
    if let Some(per_frame_us) = ((wall_s * 1e6) as u64).checked_div(served) {
        for _ in 0..served {
            latency.record(per_frame_us);
        }
    }
    judge(
        frames.len() as u64,
        served,
        shed,
        deadline_exceeded,
        0,
        retried_served,
        wall_s,
        latency.snapshot(),
        budget,
    )
}

#[allow(clippy::too_many_arguments)]
fn judge(
    offered: u64,
    served: u64,
    shed: u64,
    deadline_exceeded: u64,
    hedged: u64,
    retried_served: u64,
    wall_s: f64,
    snapshot: HistogramReport,
    budget: SloBudget,
) -> SloReport {
    let (p50_us, p99_us) = (snapshot.p50(), snapshot.p99());
    // Every frame the tier failed to serve counts against the loss
    // budget, whether it was shed outright or timed out.
    let lost_ppm = ((shed + deadline_exceeded) * 1_000_000).checked_div(offered).unwrap_or(0);
    let pass = p50_us.is_some_and(|p| p <= budget.p50_us)
        && p99_us.is_some_and(|p| p <= budget.p99_us)
        && lost_ppm <= budget.shed_ppm;
    SloReport {
        offered,
        served,
        shed,
        deadline_exceeded,
        hedged,
        retried_served,
        wall_s,
        throughput_fps: if wall_s > 0.0 { served as f64 / wall_s } else { 0.0 },
        p50_us,
        p99_us,
        latency: snapshot,
        budget,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_monotone() {
        let profile = LoadProfile { seed: 9, streams: 4, rate_hz: 100.0, frames: 200 };
        let a = arrivals(&profile);
        let b = arrivals(&profile);
        assert_eq!(a, b, "same seed must give the same schedule");
        for pair in a.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us, "arrival times must be non-decreasing");
        }
        assert!(a.iter().all(|x| x.stream < 4));
        // Mean gap should be in the right ballpark for 100 Hz: the 200th
        // arrival lands around 2 s, well within (0.5 s, 8 s).
        let last = a.last().unwrap().at_us;
        assert!((500_000..8_000_000).contains(&last), "last arrival at {last}µs");
    }

    #[test]
    fn different_seeds_differ() {
        let a = arrivals(&LoadProfile { seed: 1, ..Default::default() });
        let b = arrivals(&LoadProfile { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }
}
