//! The cluster front-end: a router over N shards, a feeder/drainer
//! serve loop with load shedding, and the rolling blue/green swap.

use crate::chaos::{ActiveChaos, ChaosAction, ChaosPlan};
use crate::report::{ClusterReport, ShardReport};
use crate::router::ShardRouter;
use crate::shard::{Shard, ShardModel};
use pcnn_core::pipeline::{DetectorConfig, TrainedDetector};
use pcnn_core::{DetectorSnapshot, Error, Result, StreamId};
use pcnn_runtime::StreamFrameResult;
use pcnn_runtime::{
    Backpressure, Metrics, PushError, QueueConfig, RequestQueue, RetryPolicy, RuntimeConfig,
    Watchdog, WatchdogStatus,
};
use pcnn_store::CheckpointDir;
use pcnn_vision::{Detection, GrayImage};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// How often a blocked push or a quiesce wait re-checks tier health, and
/// the granularity at which a chaos stall re-checks condemnation.
const SUPERVISE_SLICE: Duration = Duration::from_millis(5);

/// How long `heal` waits for a condemned drainer to acknowledge death
/// before harvesting its in-flight frames anyway. Cooperative exits
/// (panics, condemnation checks, chaos stalls) acknowledge within
/// milliseconds; only a drainer wedged inside a single serve call for
/// this long is abandoned in place.
const HEAL_GRACE: Duration = Duration::from_secs(5);

/// How [`Cluster::swap_model`] rolls a new model generation across the
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SwapPolicy {
    /// Shard by shard: each shard publishes and drains before the next
    /// swaps. At most one shard is ever draining, so capacity dips by
    /// at most one replica — the safe default.
    #[default]
    Rolling,
    /// All shards at once: every detector is rebuilt up front (failing
    /// fast before any shard changes), then every shard publishes and
    /// drains concurrently. Fastest convergence to the new generation,
    /// at the cost of the whole tier draining at the same time.
    Parallel,
}

/// Self-healing parameters: how the tier detects, retries and recovers
/// from shard failures during [`Cluster::serve_streams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionConfig {
    /// Per-frame retry policy at the serving edge: failed attempts are
    /// retried up to `max_attempts` with seeded-jitter exponential
    /// backoff, bounded by `deadline` when one is set. The default is
    /// [`RetryPolicy::no_retry`] — a failed frame fails, exactly as the
    /// tier behaved before supervision existed.
    pub retry: RetryPolicy,
    /// How long a shard's serve loop may hold work in flight without a
    /// heartbeat before the [`Watchdog`] condemns it as stalled and the
    /// supervisor fails its streams over.
    pub stall_after: Duration,
    /// Whether a dead or condemned shard is respawned warm (from the
    /// warm-start checkpoint directory when there is one, else from the
    /// seed snapshot). When `false` the shard stays drained and its
    /// streams remain on the survivors.
    pub respawn: bool,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            retry: RetryPolicy::no_retry(),
            stall_after: Duration::from_secs(5),
            respawn: true,
        }
    }
}

/// Cluster-tier parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Detector shards (replicas). Streams are spread across them by
    /// rendezvous hash on the stream id.
    pub shards: u32,
    /// Salt for the stream router. Same seed + same shard count ⇒ the
    /// same stream-to-shard assignment in every process.
    pub router_seed: u64,
    /// Per-shard serving-runtime parameters (worker pool, chunking,
    /// request queue). Every shard gets its own queue and pool.
    pub runtime: RuntimeConfig,
    /// Per-shard cap on cached temporal stream states (cell/window
    /// caches plus trackers). The least recently served stream is
    /// evicted when a shard exceeds it; eviction costs only warmth.
    pub stream_cache_capacity: usize,
    /// How [`swap_model`](Cluster::swap_model) rolls new generations
    /// across the shards.
    pub swap: SwapPolicy,
    /// Self-healing: stall detection, edge retries and shard respawn.
    /// Defaults preserve pre-supervision behaviour (no retries, 5 s
    /// stall threshold, respawn on).
    #[serde(default)]
    pub supervision: SupervisionConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            router_seed: 0,
            runtime: RuntimeConfig::default(),
            stream_cache_capacity: 64,
            swap: SwapPolicy::Rolling,
            supervision: SupervisionConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// A validating builder over the cluster and per-shard runtime
    /// parameters, mirroring [`RuntimeConfig::builder`].
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder { config: ClusterConfig::default() }
    }

    /// Validates the shard count, the stream-cache capacity and the
    /// per-shard runtime parameters (through the same builder
    /// validation a single server uses).
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::InvalidConfig {
                what: "cluster.shards".to_owned(),
                reason: "shard count must be positive".to_owned(),
            });
        }
        if self.stream_cache_capacity == 0 {
            return Err(Error::InvalidConfig {
                what: "cluster.stream_cache_capacity".to_owned(),
                reason: "a shard must be able to cache at least one stream".to_owned(),
            });
        }
        if self.supervision.retry.max_attempts == 0 {
            return Err(Error::InvalidConfig {
                what: "cluster.supervision.retry.max_attempts".to_owned(),
                reason: "a frame needs at least one attempt".to_owned(),
            });
        }
        if self.supervision.stall_after.is_zero() {
            return Err(Error::InvalidConfig {
                what: "cluster.supervision.stall_after".to_owned(),
                reason: "a zero stall threshold condemns every in-flight frame".to_owned(),
            });
        }
        RuntimeConfig::builder()
            .workers(self.runtime.workers)
            .chunk_rows(self.runtime.chunk_rows)
            .queue_capacity(self.runtime.queue.capacity)
            .batch_size(self.runtime.queue.batch_size)
            .backpressure(self.runtime.queue.backpressure)
            .build()?;
        Ok(())
    }
}

/// Builder for [`ClusterConfig`]; [`build`](ClusterConfigBuilder::build)
/// validates everything at once.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Detector shards (replicas).
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = shards;
        self
    }

    /// Salt for the stream router.
    #[must_use]
    pub fn router_seed(mut self, seed: u64) -> Self {
        self.config.router_seed = seed;
        self
    }

    /// Worker threads per shard.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.runtime.workers = workers;
        self
    }

    /// Image rows per work chunk on each shard.
    #[must_use]
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        self.config.runtime.chunk_rows = rows;
        self
    }

    /// Request-queue depth per shard.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.runtime.queue.capacity = capacity;
        self
    }

    /// Frames drained per batch on each shard.
    #[must_use]
    pub fn batch_size(mut self, size: usize) -> Self {
        self.config.runtime.queue.batch_size = size;
        self
    }

    /// Full-queue behaviour on each shard.
    #[must_use]
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.config.runtime.queue.backpressure = policy;
        self
    }

    /// Per-shard cap on cached temporal stream states.
    #[must_use]
    pub fn stream_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.stream_cache_capacity = capacity;
        self
    }

    /// How model swaps roll across the shards.
    #[must_use]
    pub fn swap_policy(mut self, policy: SwapPolicy) -> Self {
        self.config.swap = policy;
        self
    }

    /// Per-frame retry policy at the serving edge.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.supervision.retry = policy;
        self
    }

    /// Heartbeat silence after which a shard's serve loop is condemned
    /// as stalled.
    #[must_use]
    pub fn stall_after(mut self, threshold: Duration) -> Self {
        self.config.supervision.stall_after = threshold;
        self
    }

    /// Whether dead shards are respawned warm from the latest
    /// checkpoint (or the seed snapshot).
    #[must_use]
    pub fn respawn(mut self, respawn: bool) -> Self {
        self.config.supervision.respawn = respawn;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the first offending field.
    pub fn build(self) -> Result<ClusterConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One frame of one stream, as submitted to the cluster.
#[derive(Debug, Clone)]
pub struct StreamFrame {
    /// The stream (camera, client connection) the frame belongs to.
    /// All frames of a stream are served by the same shard.
    pub stream: StreamId,
    /// The frame itself.
    pub image: GrayImage,
}

/// What finally happened to one submitted stream frame, after retries,
/// failovers and re-dispatches — the per-frame return of
/// [`Cluster::serve_streams_with`].
#[derive(Debug)]
pub enum StreamOutcome {
    /// The frame was served (possibly after retries, possibly by a
    /// failover shard after its primary died mid-run).
    Served {
        /// The frame's detections, tracks and cache accounting.
        result: StreamFrameResult,
        /// Serve attempts the frame took, first try included.
        attempts: u32,
        /// Whether the frame was re-dispatched after its original shard
        /// died or stalled with the frame still queued.
        redispatched: bool,
    },
    /// Shed at the edge by a full shard queue under
    /// [`Backpressure::Reject`].
    Shed,
    /// The frame's deadline expired before an attempt could succeed.
    DeadlineExceeded,
    /// Every attempt failed (and, when the whole tier is down, frames
    /// that could not be dispatched at all).
    Failed {
        /// The last attempt's error.
        error: Error,
        /// Serve attempts made before giving up.
        attempts: u32,
    },
}

impl StreamOutcome {
    /// The served frame result, when there is one.
    pub fn served(&self) -> Option<&StreamFrameResult> {
        match self {
            StreamOutcome::Served { result, .. } => Some(result),
            _ => None,
        }
    }
}

/// One incarnation of a shard's serve loop: its queue, its heartbeat,
/// the batch it currently owns, and the flags the supervisor uses to
/// condemn and bury it. A respawned shard gets a fresh lane — stale
/// state from the dead incarnation can never leak into the new one.
#[derive(Debug)]
struct Lane {
    queue: RequestQueue<usize>,
    heartbeat: Metrics,
    /// Set by the supervisor when the watchdog declares the lane
    /// stalled; the drainer checks it before serving each frame (and
    /// between chaos-stall sleep slices) and exits without serving.
    condemned: AtomicBool,
    /// Set when the drainer is gone — a caught panic, or a condemned
    /// exit. The supervisor heals a dead lane: orphans re-dispatch,
    /// streams fail over, the shard respawns.
    dead: AtomicBool,
    /// The popped batch the drainer owns right now, front = next to
    /// serve. On death these frames are orphans, recovered ahead of
    /// the queue's remainder so per-stream order survives the failover.
    current: Mutex<VecDeque<usize>>,
}

impl Lane {
    fn new(config: QueueConfig) -> Self {
        Lane {
            queue: RequestQueue::new(config),
            heartbeat: Metrics::new(),
            condemned: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            current: Mutex::new(VecDeque::new()),
        }
    }

    /// Locks the current batch, recovering from poisoning — indices in
    /// a deque are valid after any panic, and a poisoned lock here
    /// would lose the dead drainer's orphans.
    fn lock_current(&self) -> MutexGuard<'_, VecDeque<usize>> {
        self.current.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Counters accumulated by one supervised serve call, folded into the
/// cluster totals when it returns.
#[derive(Debug, Default)]
struct ServeCounters {
    shed: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    respawns: AtomicU64,
    deadline_exceeded: AtomicU64,
    stalls: AtomicU64,
}

/// Everything a drainer borrows from the serve call, bundled so thread
/// spawns stay readable.
#[derive(Clone, Copy)]
struct DrainShared<'a> {
    frames: &'a [StreamFrame],
    results: &'a [OnceLock<StreamOutcome>],
    redispatched: &'a [AtomicBool],
    chaos: Option<&'a ActiveChaos>,
    policy: RetryPolicy,
    seed: u64,
    counters: &'a ServeCounters,
}

/// Installs (once) a panic hook that swallows the default backtrace
/// print for chaos-injected kills — their panics are scripted, caught
/// by the drainer's `catch_unwind`, and would otherwise spray stderr on
/// every chaos run. Any other panic still reaches the previous hook.
fn quiet_chaos_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaotic = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message.starts_with("chaos:"));
            if !chaotic {
                previous(info);
            }
        }));
    });
}

/// The error a chaos-injected frame failure surfaces as (shaped like a
/// real worker panic, so the retry path cannot tell them apart).
fn chaos_failure(shard: u32) -> Error {
    Error::WorkerPanic {
        stage: "cluster.chaos".to_owned(),
        message: format!("injected frame failure on shard {shard}"),
    }
}

/// One shard's supervised serve loop. Runs on the drainer thread inside
/// `catch_unwind`; panics (real or chaos-injected) kill only this lane.
fn drain_lane(shard: &Shard, lane: &Lane, shared: DrainShared<'_>) {
    while let Some(batch) = lane.queue.pop_batch() {
        *lane.lock_current() = batch.into();
        loop {
            if lane.condemned.load(Ordering::Acquire) {
                lane.dead.store(true, Ordering::Release);
                return;
            }
            let Some(&i) = lane.lock_current().front() else { break };
            lane.heartbeat.begin_work();
            let mut forced_fail = false;
            match shared.chaos.and_then(|chaos| chaos.on_frame(shard.id())) {
                Some(ChaosAction::Kill) => {
                    panic!("chaos: shard {} killed before frame {i}", shard.id())
                }
                Some(ChaosAction::Stall(how_long)) => {
                    // Sleep in slices, re-checking condemnation: a
                    // condemned stall wakes into a clean exit, leaving
                    // the unserved frame for the supervisor to recover.
                    let stalled_at = Instant::now();
                    while stalled_at.elapsed() < how_long {
                        std::thread::sleep(SUPERVISE_SLICE);
                        if lane.condemned.load(Ordering::Acquire) {
                            lane.heartbeat.end_work();
                            lane.dead.store(true, Ordering::Release);
                            return;
                        }
                    }
                }
                Some(ChaosAction::Fail) => forced_fail = true,
                None => {}
            }
            let frame = &shared.frames[i];
            let frame_start = Instant::now();
            let mut attempt = 0u32;
            let outcome = loop {
                attempt += 1;
                let served = if forced_fail && attempt == 1 {
                    Err(chaos_failure(shard.id()))
                } else {
                    shard.run_stream_frame(frame.stream, &frame.image)
                };
                match served {
                    Ok(result) => {
                        break StreamOutcome::Served {
                            result,
                            attempts: attempt,
                            redispatched: shared.redispatched[i].load(Ordering::Relaxed),
                        }
                    }
                    Err(error) => {
                        if attempt >= shared.policy.max_attempts.max(1) {
                            break StreamOutcome::Failed { error, attempts: attempt };
                        }
                        let backoff =
                            shared.policy.backoff_jittered(attempt, shared.seed ^ i as u64);
                        if shared
                            .policy
                            .deadline
                            .is_some_and(|d| frame_start.elapsed() + backoff >= d)
                        {
                            shared.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                            break StreamOutcome::DeadlineExceeded;
                        }
                        shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_RETRY);
                        std::thread::sleep(backoff);
                        drop(span);
                    }
                }
            };
            let _ = shared.results[i].set(outcome);
            lane.lock_current().pop_front();
            lane.heartbeat.end_work();
        }
    }
}

/// A sharded, replicated serving tier over the detection runtime.
///
/// Frames are routed by stream id to one of `shards` replicas, each an
/// owned swappable model with its own worker pool, request queue and
/// (optional) fallback floor. Determinism contract: with a fixed router
/// seed and shard count, per-stream results are bit-identical to a
/// single [`DetectionServer`](pcnn_runtime::DetectionServer) run on the
/// same frames, regardless of per-shard worker counts.
#[derive(Debug)]
pub struct Cluster {
    router: Mutex<ShardRouter>,
    shards: Vec<Shard>,
    config: ClusterConfig,
    /// The snapshot the tier was built from — the respawn source of
    /// last resort when no checkpoint directory is attached (or its
    /// contents are all corrupt).
    seed_snapshot: DetectorSnapshot,
    /// The warm-start checkpoint directory, when the tier came from
    /// one: respawns reload the newest valid snapshot from here.
    respawn_dir: Option<PathBuf>,
    frames_routed: AtomicU64,
    frames_shed: AtomicU64,
    swaps: AtomicU64,
    failovers: AtomicU64,
    respawns: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    deadline_exceeded: AtomicU64,
    stalls: AtomicU64,
}

impl Cluster {
    /// A cluster of `config.shards` replicas, each warm-started from
    /// `snapshot` (generation 0).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a degenerate configuration, or any
    /// snapshot-rebuild failure from
    /// [`TrainedDetector::from_snapshot`].
    pub fn new(snapshot: &DetectorSnapshot, config: ClusterConfig) -> Result<Self> {
        Self::with_engine(snapshot, config, DetectorConfig::default())
    }

    /// Like [`new`](Cluster::new) with an explicit detection-engine
    /// configuration (pyramid, NMS) shared by every shard.
    pub fn with_engine(
        snapshot: &DetectorSnapshot,
        config: ClusterConfig,
        engine: DetectorConfig,
    ) -> Result<Self> {
        config.validate()?;
        let router = ShardRouter::new(config.shards, config.router_seed)?;
        let shards = (0..config.shards)
            .map(|id| {
                let detector = TrainedDetector::from_snapshot(snapshot)?;
                Ok(Shard::new(id, detector, config.runtime, engine, config.stream_cache_capacity))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Cluster {
            router: Mutex::new(router),
            shards,
            config,
            seed_snapshot: snapshot.clone(),
            respawn_dir: None,
            frames_routed: AtomicU64::new(0),
            frames_shed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        })
    }

    /// Warm-starts a cluster from the newest valid snapshot in a
    /// [`CheckpointDir`] — the serving-side counterpart of
    /// resume-from-checkpoint training.
    ///
    /// # Errors
    ///
    /// [`Error::MissingEntry`] when the directory holds no usable
    /// snapshot, plus everything [`new`](Cluster::new) can raise.
    pub fn warm_start(dir: &CheckpointDir, config: ClusterConfig) -> Result<Self> {
        let Some((_, snapshot)) = dir.load_latest::<DetectorSnapshot>()? else {
            return Err(Error::MissingEntry {
                what: format!("detector snapshot in {}", dir.path().display()),
            });
        };
        let mut cluster = Self::new(&snapshot, config)?;
        // Respawns reload from the same directory, picking up epochs
        // saved after the warm start (and falling past corrupt ones).
        cluster.respawn_dir = Some(dir.path().to_path_buf());
        Ok(cluster)
    }

    /// The detector a respawned shard comes back with: the newest valid
    /// snapshot in the warm-start directory when there is one (chaos
    /// may corrupt the newest file first — that is the point of the
    /// [`ChaosEvent::CorruptNewestCheckpoint`](crate::ChaosEvent)
    /// fault), else the seed snapshot the tier was built from.
    fn respawn_detector(&self, chaos: Option<&ActiveChaos>) -> Result<TrainedDetector> {
        if let Some(path) = &self.respawn_dir {
            let dir = CheckpointDir::create(path)?;
            if chaos.is_some_and(ActiveChaos::take_corrupt_checkpoint) {
                let _ = crate::chaos::corrupt_newest_checkpoint(&dir);
            }
            if let Ok(Some((_, snapshot))) = dir.load_latest::<DetectorSnapshot>() {
                return TrainedDetector::from_snapshot(&snapshot);
            }
        }
        TrainedDetector::from_snapshot(&self.seed_snapshot)
    }

    /// Locks the router, recovering from poisoning — drain lists and
    /// seeds stay structurally valid across any panic.
    fn lock_router(&self) -> MutexGuard<'_, ShardRouter> {
        self.router.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registers a fallback floor rebuilt from `snapshot` and shared by
    /// every shard: a batch whose live model fails its canary probe is
    /// served by the floor instead (counted as degraded in the shard
    /// report), so shard faults cost accuracy, never availability.
    ///
    /// # Errors
    ///
    /// Snapshot-rebuild failures from
    /// [`TrainedDetector::from_snapshot`].
    pub fn set_fallback(&mut self, snapshot: &DetectorSnapshot) -> Result<()> {
        let floor = Arc::new(ShardModel::new(TrainedDetector::from_snapshot(snapshot)?, 0));
        for shard in &mut self.shards {
            shard.set_fallback(Arc::clone(&floor));
        }
        Ok(())
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shards, by index.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// A cheap, copyable control-plane handle for swaps, drains and
    /// reports from another thread while `serve` runs.
    pub fn handle(&self) -> ClusterHandle<'_> {
        ClusterHandle { cluster: self }
    }

    /// The shard currently serving `stream`.
    pub fn route(&self, stream: StreamId) -> u32 {
        self.lock_router().route(stream.raw())
    }

    /// Blue/green swap across the shards, honouring the configured
    /// [`SwapPolicy`]: each shard publishes the model rebuilt from
    /// `snapshot`, then drains the batches in flight under older
    /// generations. Queued frames are untouched throughout — every
    /// submitted frame is served exactly once, by exactly one model
    /// generation — and every shard's temporal stream caches are
    /// invalidated once its drain completes, so the new generation
    /// never serves cells extracted by the old one. Returns the last
    /// shard's new generation.
    ///
    /// # Errors
    ///
    /// Snapshot-rebuild failures. Under [`SwapPolicy::Rolling`], shards
    /// already swapped keep the new model (the roll stops, it does not
    /// revert); under [`SwapPolicy::Parallel`] every detector is
    /// rebuilt before any shard changes, so a rebuild failure leaves
    /// the tier untouched.
    pub fn swap_model(&self, snapshot: &DetectorSnapshot) -> Result<u64> {
        let generation = match self.config.swap {
            SwapPolicy::Rolling => {
                let mut generation = 0;
                for shard in &self.shards {
                    let detector = TrainedDetector::from_snapshot(snapshot)?;
                    generation = shard.install(detector);
                }
                generation
            }
            SwapPolicy::Parallel => {
                let detectors = self
                    .shards
                    .iter()
                    .map(|_| TrainedDetector::from_snapshot(snapshot))
                    .collect::<Result<Vec<_>>>()?;
                std::thread::scope(|scope| {
                    let installs: Vec<_> = self
                        .shards
                        .iter()
                        .zip(detectors)
                        .map(|(shard, detector)| scope.spawn(move || shard.install(detector)))
                        .collect();
                    installs
                        .into_iter()
                        .map(|h| h.join().expect("install does not panic"))
                        .last()
                        .expect("validated config has at least one shard")
                })
            }
        };
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Takes a shard out of the routing rotation; its streams re-route
    /// to the surviving shards (which keep their own streams — see
    /// [`ShardRouter`]). Frames already queued for the shard still
    /// drain through it.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an out-of-range shard or when this
    /// would leave no shard in rotation.
    pub fn drain_shard(&self, shard: u32) -> Result<()> {
        self.lock_router().drain(shard)
    }

    /// Returns a drained shard to the rotation.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an out-of-range shard.
    pub fn restore_shard(&self, shard: u32) -> Result<()> {
        self.lock_router().restore(shard)
    }

    /// Detects over a single routed frame on the caller's thread (the
    /// one-shot path; streams of frames belong in [`serve`](Cluster::serve)).
    ///
    /// # Errors
    ///
    /// [`Error::WorkerPanic`] when a pipeline stage panicked for this
    /// frame.
    pub fn detect(&self, stream: StreamId, frame: &GrayImage) -> Result<Vec<Detection>> {
        let shard = self.route(stream);
        self.frames_routed.fetch_add(1, Ordering::Relaxed);
        self.shards[shard as usize].run_batch(&[frame]).pop().expect("one frame in, one result out")
    }

    /// Detects over one frame of a video stream on the caller's thread,
    /// using the temporal cache and tracker the routed shard keeps for
    /// `stream`. Frames of a stream must be submitted in capture order.
    ///
    /// # Errors
    ///
    /// [`Error::WorkerPanic`] when a pipeline stage panicked for this
    /// frame; the stream's cache is invalidated and its next frame runs
    /// cold.
    pub fn detect_stream(&self, stream: StreamId, frame: &GrayImage) -> Result<StreamFrameResult> {
        let shard = self.route(stream);
        self.frames_routed.fetch_add(1, Ordering::Relaxed);
        self.shards[shard as usize].run_stream_frame(stream, frame)
    }

    /// Serves interleaved video-stream frames through the sharded tier:
    /// the feeder routes every frame to its shard's queue in input
    /// order while one drainer per shard serves them through
    /// [`Shard::run_stream_frame`]. A single drainer per shard means
    /// each stream's frames are served strictly in submission order, so
    /// temporal caches and trackers observe the stream as a camera
    /// would produce it.
    ///
    /// The loop is supervised: drainers run under `catch_unwind` with a
    /// per-lane heartbeat, and the feeder doubles as supervisor — a
    /// dead or watchdog-condemned shard is drained from the rotation,
    /// its streams fail over to the survivors (trackers migrate,
    /// caches rebuild warmth), its unserved frames re-dispatch in
    /// order, and the shard respawns warm from the latest checkpoint.
    ///
    /// Returns per-frame outcomes in input order; `None` marks frames
    /// shed by a full shard queue under
    /// [`Backpressure::Reject`],
    /// and `Some(Err(_))` a frame whose attempts all failed.
    pub fn serve_streams(&self, frames: &[StreamFrame]) -> Vec<Option<Result<StreamFrameResult>>> {
        self.serve_streams_with(frames, None)
            .into_iter()
            .map(|outcome| match outcome {
                StreamOutcome::Served { result, .. } => Some(Ok(result)),
                StreamOutcome::Shed | StreamOutcome::DeadlineExceeded => None,
                StreamOutcome::Failed { error, .. } => Some(Err(error)),
            })
            .collect()
    }

    /// [`serve_streams`](Cluster::serve_streams) with full per-frame
    /// outcomes and optional scripted fault injection — the entry point
    /// the chaos harness drives. `plan` (when given) arms the scripted
    /// kills, stalls, frame failures and checkpoint corruption; its
    /// seed also salts the retry backoff jitter.
    pub fn serve_streams_with(
        &self,
        frames: &[StreamFrame],
        plan: Option<&ChaosPlan>,
    ) -> Vec<StreamOutcome> {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SERVE);
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, frames.len() as u64);
        }
        if plan.is_some() {
            quiet_chaos_panics();
        }
        let chaos = plan.map(|p| ActiveChaos::new(p, self.config.shards));
        let counters = ServeCounters::default();
        let results: Vec<OnceLock<StreamOutcome>> =
            (0..frames.len()).map(|_| OnceLock::new()).collect();
        let redispatched: Vec<AtomicBool> =
            (0..frames.len()).map(|_| AtomicBool::new(false)).collect();
        std::thread::scope(|scope| {
            let mut run = ServeLoop {
                cluster: self,
                frames,
                results: &results,
                redispatched: &redispatched,
                chaos: chaos.as_ref(),
                counters: &counters,
                lanes: (0..self.shards.len())
                    .map(|_| Arc::new(Lane::new(self.config.runtime.queue)))
                    .collect(),
                down: vec![false; self.shards.len()],
                tier_down: false,
                pending: VecDeque::new(),
                last_route: HashMap::new(),
                last_pushed: HashMap::new(),
                watchdog: Watchdog::new(self.config.supervision.stall_after),
                seed: plan.map_or(self.config.router_seed, |p| p.seed),
            };
            for k in 0..run.lanes.len() {
                run.spawn_drainer(scope, k, Arc::clone(&run.lanes[k]));
            }
            for i in 0..frames.len() {
                run.flush_pending(scope);
                self.frames_routed.fetch_add(1, Ordering::Relaxed);
                run.dispatch(scope, i);
            }
            run.finish(scope);
        });
        self.frames_shed.fetch_add(counters.shed.load(Ordering::Relaxed), Ordering::Relaxed);
        self.retries.fetch_add(counters.retries.load(Ordering::Relaxed), Ordering::Relaxed);
        self.failovers.fetch_add(counters.failovers.load(Ordering::Relaxed), Ordering::Relaxed);
        self.respawns.fetch_add(counters.respawns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.deadline_exceeded
            .fetch_add(counters.deadline_exceeded.load(Ordering::Relaxed), Ordering::Relaxed);
        self.stalls.fetch_add(counters.stalls.load(Ordering::Relaxed), Ordering::Relaxed);
        drop(span);
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("finish() resolves every frame"))
            .collect()
    }

    /// Serves a stream of frames through the sharded tier: a feeder
    /// thread routes every frame to its shard's queue in input order
    /// while one drainer per shard executes batches on that shard's
    /// worker pool.
    ///
    /// Returns per-frame detections in input order; `None` marks frames
    /// shed by a full shard queue under
    /// [`Backpressure::Reject`].
    /// With [`Backpressure::Block`]
    /// every slot is `Some`.
    ///
    /// # Panics
    ///
    /// Re-raises per-frame worker panics, like
    /// [`DetectionServer::detect_batch`](pcnn_runtime::DetectionServer::detect_batch).
    pub fn serve(&self, frames: &[StreamFrame]) -> Vec<Option<Vec<Detection>>> {
        self.serve_paced(frames, None, None).0
    }

    /// [`serve`](Cluster::serve) with optional open-loop pacing and
    /// per-frame latency accounting, shared with the load harness.
    ///
    /// `at_us[i]` (when given) is frame `i`'s scheduled submission time
    /// relative to the serve start; the feeder sleeps until then and
    /// submits regardless of downstream progress (open loop).
    /// `latency` (when given) records each served frame's
    /// schedule-to-completion time in microseconds, so queueing delay —
    /// including delay the feeder never observes — lands in the
    /// histogram.
    ///
    /// When the supervision retry policy carries a deadline, admission
    /// is deadline-aware: a frame blocked past half its deadline is
    /// *hedged* — re-dispatched to its stream's rendezvous failover
    /// shard for the remaining budget — and only counted
    /// deadline-exceeded when both shards stay full.
    pub(crate) fn serve_paced(
        &self,
        frames: &[StreamFrame],
        at_us: Option<&[u64]>,
        latency: Option<&pcnn_runtime::Histogram>,
    ) -> (Vec<Option<Vec<Detection>>>, EdgeStats) {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SERVE);
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, frames.len() as u64);
        }
        let queues: Vec<RequestQueue<usize>> =
            self.shards.iter().map(|_| RequestQueue::new(self.config.runtime.queue)).collect();
        let start = Instant::now();
        let mut results: Vec<Option<Vec<Detection>>> = (0..frames.len()).map(|_| None).collect();
        let mut stats = EdgeStats::default();
        std::thread::scope(|scope| {
            let drainers: Vec<_> = self
                .shards
                .iter()
                .zip(&queues)
                .map(|(shard, queue)| {
                    scope.spawn(move || {
                        let mut served: Vec<(usize, Vec<Detection>)> = Vec::new();
                        while let Some(batch) = queue.pop_batch() {
                            let imgs: Vec<&GrayImage> =
                                batch.iter().map(|&i| &frames[i].image).collect();
                            let dets = shard.run_batch(&imgs);
                            let done_us = start.elapsed().as_micros() as u64;
                            for (&i, det) in batch.iter().zip(dets) {
                                let det = det.unwrap_or_else(|e| panic!("{e}"));
                                if let (Some(at), Some(hist)) = (at_us, latency) {
                                    hist.record(done_us.saturating_sub(at[i]));
                                }
                                served.push((i, det));
                            }
                        }
                        served
                    })
                })
                .collect();
            // The feeder runs on the calling thread: route each frame in
            // input order, pacing against the schedule when one is given.
            let deadline = self.config.supervision.retry.deadline;
            for (i, frame) in frames.iter().enumerate() {
                if let Some(at) = at_us {
                    let due = Duration::from_micros(at[i]);
                    let now = start.elapsed();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let shard = self.route(frame.stream);
                self.frames_routed.fetch_add(1, Ordering::Relaxed);
                let pushed = match deadline {
                    None => queues[shard as usize].push(i),
                    Some(budget) => {
                        // Half the budget on the primary; a blocked
                        // frame hedges to the failover shard for the
                        // rest rather than riding out the whole wait.
                        let half = budget / 2;
                        match queues[shard as usize].push_timeout(i, half) {
                            Err(PushError::Timeout) => {
                                stats.hedges += 1;
                                let hedge_span =
                                    pcnn_trace::span(pcnn_trace::stages::CLUSTER_RETRY);
                                let target = self
                                    .lock_router()
                                    .failover(frame.stream.raw())
                                    .unwrap_or(shard);
                                let result = queues[target as usize]
                                    .push_timeout(i, budget.saturating_sub(half));
                                drop(hedge_span);
                                result
                            }
                            other => other,
                        }
                    }
                };
                match pushed {
                    Ok(_) => {}
                    Err(PushError::Full) => stats.shed += 1,
                    Err(PushError::Timeout) => stats.deadline_exceeded += 1,
                    Err(PushError::Closed) => unreachable!("cluster closes queues after feeding"),
                }
            }
            for queue in &queues {
                queue.close();
            }
            self.frames_shed.fetch_add(stats.shed, Ordering::Relaxed);
            self.hedges.fetch_add(stats.hedges, Ordering::Relaxed);
            self.deadline_exceeded.fetch_add(stats.deadline_exceeded, Ordering::Relaxed);
            for drainer in drainers {
                match drainer.join() {
                    Ok(served) => {
                        for (i, det) in served {
                            results[i] = Some(det);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        drop(span);
        (results, stats)
    }

    /// Snapshots the whole tier: every shard's accumulated
    /// [`RuntimeReport`](pcnn_runtime::RuntimeReport), their merged
    /// aggregate, routing/shedding/swap counters and the live trace
    /// summary when a tracer is installed.
    pub fn report(&self) -> ClusterReport {
        let router = self.lock_router();
        let shards: Vec<ShardReport> = self
            .shards
            .iter()
            .map(|s| ShardReport {
                shard: s.id(),
                generation: s.generation(),
                swaps: s.swaps(),
                drained: router.is_drained(s.id()),
                report: s.report(),
            })
            .collect();
        drop(router);
        let zero = Metrics::new().report(0, None);
        let mut aggregate = shards.iter().fold(zero, |acc, s| acc.merge(&s.report));
        // Per-shard trace summaries all snapshot the same process-global
        // tracer; surface one fresh snapshot at the top level instead.
        aggregate.trace = None;
        ClusterReport {
            shards,
            aggregate,
            frames_routed: self.frames_routed.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            trace: pcnn_trace::profile_snapshot().map(pcnn_runtime::TraceSummary::from),
        }
    }
}

/// Edge-of-tier accounting for one batch serve call: what never made it
/// to a shard, and what only made it by hedging.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EdgeStats {
    /// Frames rejected outright by a full queue.
    pub shed: u64,
    /// Frames whose admission deadline expired (primary and hedge both
    /// stayed full).
    pub deadline_exceeded: u64,
    /// Frames re-dispatched to their failover shard when the primary
    /// blocked past half the deadline.
    pub hedges: u64,
}

/// How one push attempt at the serving edge resolved.
enum PushOutcome {
    /// Queued on the target lane.
    Pushed,
    /// Rejected by a full queue ([`Backpressure::Reject`]).
    Shed,
    /// The admission deadline expired while the queue stayed full.
    Deadline,
    /// The target lane died (or was respawned) mid-push — re-route and
    /// try again.
    Rerouted,
}

/// The feeder-as-supervisor state for one supervised serve call. The
/// feeder thread owns it exclusively; drainers see only the shared
/// slices ([`DrainShared`]) and their own [`Lane`].
struct ServeLoop<'a> {
    cluster: &'a Cluster,
    frames: &'a [StreamFrame],
    results: &'a [OnceLock<StreamOutcome>],
    redispatched: &'a [AtomicBool],
    chaos: Option<&'a ActiveChaos>,
    counters: &'a ServeCounters,
    /// One lane per shard, replaced wholesale on respawn.
    lanes: Vec<Arc<Lane>>,
    /// Shards that died and were not respawned; they stay drained.
    down: Vec<bool>,
    /// The last shard died and could not be drained or respawned —
    /// nothing is left to serve, remaining frames fail fast.
    tier_down: bool,
    /// Orphaned frame indices awaiting re-dispatch, oldest first.
    pending: VecDeque<usize>,
    /// Where each stream's frames were last pushed — route changes
    /// (failover out, return after respawn) migrate tracker state.
    last_route: HashMap<u64, u32>,
    /// Each stream's most recently pushed frame index, for quiescing
    /// before a migration.
    last_pushed: HashMap<u64, usize>,
    watchdog: Watchdog,
    seed: u64,
}

impl<'a> ServeLoop<'a> {
    /// Spawns `lane`'s drainer for shard `k` under `catch_unwind`: a
    /// panic (chaos kill, or a real bug) marks the lane dead instead of
    /// tearing down the serve call.
    fn spawn_drainer<'s, 'e>(
        &self,
        scope: &'s std::thread::Scope<'s, 'e>,
        k: usize,
        lane: Arc<Lane>,
    ) where
        'a: 'e,
    {
        let shard = &self.cluster.shards[k];
        let shared = DrainShared {
            frames: self.frames,
            results: self.results,
            redispatched: self.redispatched,
            chaos: self.chaos,
            policy: self.cluster.config.supervision.retry,
            seed: self.seed,
            counters: self.counters,
        };
        scope.spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drain_lane(shard, &lane, shared);
            }));
            // Dead on EVERY exit path — panic or clean return — so the
            // supervisor's pre-harvest wait in `heal` always terminates.
            lane.dead.store(true, Ordering::Release);
        });
    }

    /// One supervision sweep: heal every dead lane, and condemn (then
    /// heal) every lane whose heartbeat the watchdog flags as stalled.
    fn supervise<'s, 'e>(&mut self, scope: &'s std::thread::Scope<'s, 'e>)
    where
        'a: 'e,
    {
        for k in 0..self.lanes.len() {
            if self.down[k] {
                continue;
            }
            let lane = Arc::clone(&self.lanes[k]);
            if lane.dead.load(Ordering::Acquire) {
                self.heal(scope, k);
            } else if !lane.condemned.load(Ordering::Acquire)
                && matches!(self.watchdog.check(&lane.heartbeat), WatchdogStatus::Stalled { .. })
            {
                self.counters.stalls.fetch_add(1, Ordering::Relaxed);
                lane.condemned.store(true, Ordering::Release);
                self.heal(scope, k);
            }
        }
    }

    /// Buries shard `k`'s dead lane and brings the tier back to full
    /// strength: recover the orphaned frames (the dead drainer's
    /// current batch, then its queue, preserving per-stream order),
    /// drain the shard from the rotation, migrate its stream trackers
    /// to the survivors, respawn it warm, and restore it. Orphans go to
    /// the front of the pending deque for re-dispatch.
    fn heal<'s, 'e>(&mut self, scope: &'s std::thread::Scope<'s, 'e>, k: usize)
    where
        'a: 'e,
    {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_FAILOVER);
        let lane = Arc::clone(&self.lanes[k]);
        lane.condemned.store(true, Ordering::Release);
        lane.queue.close();
        // A condemned-but-alive drainer may still be mid-serve on its
        // front frame. Harvesting that frame (and snapshotting the
        // shard's trackers) while the serve can still commit would let
        // one frame update a tracker twice — once in the old lane, once
        // re-dispatched against the migrated snapshot. Wait for the
        // drainer to acknowledge death: it checks condemnation between
        // frames and inside chaos stalls, and the spawn wrapper marks
        // the lane dead on every exit. A thread still unresponsive
        // after the grace window is abandoned wedged-in-place and its
        // frames are recovered best-effort.
        let grace = Instant::now();
        while !lane.dead.load(Ordering::Acquire) && grace.elapsed() < HEAL_GRACE {
            std::thread::sleep(Duration::from_micros(200));
        }
        let mut orphans: Vec<usize> = lane.lock_current().drain(..).collect();
        while let Some(batch) = lane.queue.pop_batch() {
            orphans.extend(batch);
        }
        orphans.retain(|&i| self.results[i].get().is_none());
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, orphans.len() as u64);
        }
        let shard = &self.cluster.shards[k];
        let drained = self.cluster.lock_router().drain(k as u32).is_ok();
        if drained {
            let snapshots = shard.take_stream_snapshots();
            let router = self.cluster.lock_router();
            for snapshot in snapshots {
                let stream = snapshot.id.raw();
                let target = router.route(stream);
                self.cluster.shards[target as usize].install_stream_snapshot(snapshot);
                self.last_route.insert(stream, target);
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut respawned = false;
        if self.cluster.config.supervision.respawn {
            if let Ok(detector) = self.cluster.respawn_detector(self.chaos) {
                let respawn_span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_RESPAWN);
                shard.respawn(detector);
                self.counters.respawns.fetch_add(1, Ordering::Relaxed);
                let fresh = Arc::new(Lane::new(self.cluster.config.runtime.queue));
                self.lanes[k] = Arc::clone(&fresh);
                self.spawn_drainer(scope, k, fresh);
                if drained {
                    let _ = self.cluster.lock_router().restore(k as u32);
                }
                respawned = true;
                drop(respawn_span);
            }
        }
        if !respawned {
            self.down[k] = true;
            if !drained {
                self.tier_down = true;
            }
        }
        for &i in orphans.iter().rev() {
            self.pending.push_front(i);
        }
        drop(span);
    }

    /// Re-dispatches every orphaned frame, oldest first. An orphan's
    /// stream keeps its frame order: orphans of one stream all come
    /// from the same dead lane, in queue order, ahead of any input
    /// frame not yet dispatched.
    fn flush_pending<'s, 'e>(&mut self, scope: &'s std::thread::Scope<'s, 'e>)
    where
        'a: 'e,
    {
        while let Some(i) = self.pending.pop_front() {
            if self.results[i].get().is_some() {
                continue;
            }
            self.redispatched[i].store(true, Ordering::Relaxed);
            self.dispatch(scope, i);
        }
    }

    /// Routes and pushes frame `i`, healing the tier as needed: route
    /// changes migrate the stream's tracker (after quiescing its last
    /// in-flight frame), dead targets trigger failover and re-route,
    /// full queues shed or run down the admission deadline.
    fn dispatch<'s, 'e>(&mut self, scope: &'s std::thread::Scope<'s, 'e>, i: usize)
    where
        'a: 'e,
    {
        let stream = self.frames[i].stream;
        loop {
            if self.tier_down {
                let _ = self.results[i].set(StreamOutcome::Failed {
                    error: Error::WorkerPanic {
                        stage: "cluster.supervise".to_owned(),
                        message: "no shard in rotation (last shard died, respawn unavailable)"
                            .to_owned(),
                    },
                    attempts: 0,
                });
                return;
            }
            self.supervise(scope);
            if self.tier_down {
                continue;
            }
            let target = self.cluster.lock_router().route(stream.raw());
            if self.down[target as usize] {
                continue;
            }
            if let Some(&previous) = self.last_route.get(&stream.raw()) {
                if previous != target {
                    // The stream moved (failover out, or home again
                    // after a respawn): wait out its in-flight frame,
                    // then carry the tracker over. The cache stays
                    // behind — cold serves are bit-identical, warmth
                    // rebuilds on the next frame.
                    self.quiesce(scope, stream, i);
                    if let Some(snapshot) =
                        self.cluster.shards[previous as usize].take_stream_snapshot(stream)
                    {
                        let now = self.cluster.lock_router().route(stream.raw());
                        self.cluster.shards[now as usize].install_stream_snapshot(snapshot);
                        self.last_route.insert(stream.raw(), now);
                    } else {
                        self.last_route.insert(stream.raw(), target);
                    }
                    continue;
                }
            }
            match self.push_to(scope, target as usize, i) {
                PushOutcome::Pushed => {
                    self.last_route.insert(stream.raw(), target);
                    self.last_pushed.insert(stream.raw(), i);
                    return;
                }
                PushOutcome::Shed => {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    let _ = self.results[i].set(StreamOutcome::Shed);
                    return;
                }
                PushOutcome::Deadline => {
                    self.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    let _ = self.results[i].set(StreamOutcome::DeadlineExceeded);
                    return;
                }
                PushOutcome::Rerouted => continue,
            }
        }
    }

    /// Waits until `stream` has no frame in flight, so its tracker can
    /// migrate without racing a serve. A frame is quiesced when it is
    /// resolved, orphaned into `pending` (its lane died — nothing is
    /// serving it), or is the very frame being dispatched.
    fn quiesce<'s, 'e>(
        &mut self,
        scope: &'s std::thread::Scope<'s, 'e>,
        stream: StreamId,
        current: usize,
    ) where
        'a: 'e,
    {
        loop {
            let Some(&last) = self.last_pushed.get(&stream.raw()) else { return };
            if last == current || self.results[last].get().is_some() || self.pending.contains(&last)
            {
                return;
            }
            self.supervise(scope);
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Pushes frame `i` to shard `target`'s lane in supervised slices:
    /// between blocked slices the tier is re-checked (so a dead drainer
    /// behind a full queue cannot wedge the feeder), and the configured
    /// deadline bounds the total wait.
    fn push_to<'s, 'e>(
        &mut self,
        scope: &'s std::thread::Scope<'s, 'e>,
        target: usize,
        i: usize,
    ) -> PushOutcome
    where
        'a: 'e,
    {
        let lane = Arc::clone(&self.lanes[target]);
        let deadline = self.cluster.config.supervision.retry.deadline;
        let started = Instant::now();
        loop {
            if lane.dead.load(Ordering::Acquire) {
                return PushOutcome::Rerouted;
            }
            match lane.queue.push_timeout(i, SUPERVISE_SLICE) {
                Ok(_) => return PushOutcome::Pushed,
                Err(PushError::Full) => return PushOutcome::Shed,
                Err(PushError::Closed) => return PushOutcome::Rerouted,
                Err(PushError::Timeout) => {
                    if deadline.is_some_and(|d| started.elapsed() >= d) {
                        return PushOutcome::Deadline;
                    }
                    self.supervise(scope);
                    if !Arc::ptr_eq(&lane, &self.lanes[target]) {
                        // The lane was respawned out from under us.
                        return PushOutcome::Rerouted;
                    }
                }
            }
        }
    }

    /// Epilogue: keep supervising and re-dispatching until every frame
    /// has an outcome, then close the lanes so the drainers exit.
    fn finish<'s, 'e>(&mut self, scope: &'s std::thread::Scope<'s, 'e>)
    where
        'a: 'e,
    {
        loop {
            self.supervise(scope);
            self.flush_pending(scope);
            if self.results.iter().all(|slot| slot.get().is_some()) {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        for lane in &self.lanes {
            lane.queue.close();
        }
    }
}

/// A copyable control-plane view of a [`Cluster`]: swap models, drain
/// and restore shards, and snapshot reports — typically from a
/// supervisor thread while the data plane serves.
#[derive(Debug, Clone, Copy)]
pub struct ClusterHandle<'c> {
    cluster: &'c Cluster,
}

impl ClusterHandle<'_> {
    /// See [`Cluster::swap_model`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::swap_model`].
    pub fn swap_model(&self, snapshot: &DetectorSnapshot) -> Result<u64> {
        self.cluster.swap_model(snapshot)
    }

    /// See [`Cluster::drain_shard`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::drain_shard`].
    pub fn drain_shard(&self, shard: u32) -> Result<()> {
        self.cluster.drain_shard(shard)
    }

    /// See [`Cluster::restore_shard`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::restore_shard`].
    pub fn restore_shard(&self, shard: u32) -> Result<()> {
        self.cluster.restore_shard(shard)
    }

    /// See [`Cluster::report`].
    pub fn report(&self) -> ClusterReport {
        self.cluster.report()
    }
}
