//! The cluster front-end: a router over N shards, a feeder/drainer
//! serve loop with load shedding, and the rolling blue/green swap.

use crate::report::{ClusterReport, ShardReport};
use crate::router::ShardRouter;
use crate::shard::{Shard, ShardModel};
use pcnn_core::pipeline::{DetectorConfig, TrainedDetector};
use pcnn_core::{DetectorSnapshot, Error, Result, StreamId};
use pcnn_runtime::StreamFrameResult;
use pcnn_runtime::{Backpressure, Metrics, PushError, RequestQueue, RuntimeConfig};
use pcnn_store::CheckpointDir;
use pcnn_vision::{Detection, GrayImage};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How [`Cluster::swap_model`] rolls a new model generation across the
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SwapPolicy {
    /// Shard by shard: each shard publishes and drains before the next
    /// swaps. At most one shard is ever draining, so capacity dips by
    /// at most one replica — the safe default.
    #[default]
    Rolling,
    /// All shards at once: every detector is rebuilt up front (failing
    /// fast before any shard changes), then every shard publishes and
    /// drains concurrently. Fastest convergence to the new generation,
    /// at the cost of the whole tier draining at the same time.
    Parallel,
}

/// Cluster-tier parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Detector shards (replicas). Streams are spread across them by
    /// rendezvous hash on the stream id.
    pub shards: u32,
    /// Salt for the stream router. Same seed + same shard count ⇒ the
    /// same stream-to-shard assignment in every process.
    pub router_seed: u64,
    /// Per-shard serving-runtime parameters (worker pool, chunking,
    /// request queue). Every shard gets its own queue and pool.
    pub runtime: RuntimeConfig,
    /// Per-shard cap on cached temporal stream states (cell/window
    /// caches plus trackers). The least recently served stream is
    /// evicted when a shard exceeds it; eviction costs only warmth.
    pub stream_cache_capacity: usize,
    /// How [`swap_model`](Cluster::swap_model) rolls new generations
    /// across the shards.
    pub swap: SwapPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            router_seed: 0,
            runtime: RuntimeConfig::default(),
            stream_cache_capacity: 64,
            swap: SwapPolicy::Rolling,
        }
    }
}

impl ClusterConfig {
    /// A validating builder over the cluster and per-shard runtime
    /// parameters, mirroring [`RuntimeConfig::builder`].
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder { config: ClusterConfig::default() }
    }

    /// Validates the shard count, the stream-cache capacity and the
    /// per-shard runtime parameters (through the same builder
    /// validation a single server uses).
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::InvalidConfig {
                what: "cluster.shards".to_owned(),
                reason: "shard count must be positive".to_owned(),
            });
        }
        if self.stream_cache_capacity == 0 {
            return Err(Error::InvalidConfig {
                what: "cluster.stream_cache_capacity".to_owned(),
                reason: "a shard must be able to cache at least one stream".to_owned(),
            });
        }
        RuntimeConfig::builder()
            .workers(self.runtime.workers)
            .chunk_rows(self.runtime.chunk_rows)
            .queue_capacity(self.runtime.queue.capacity)
            .batch_size(self.runtime.queue.batch_size)
            .backpressure(self.runtime.queue.backpressure)
            .build()?;
        Ok(())
    }
}

/// Builder for [`ClusterConfig`]; [`build`](ClusterConfigBuilder::build)
/// validates everything at once.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Detector shards (replicas).
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = shards;
        self
    }

    /// Salt for the stream router.
    #[must_use]
    pub fn router_seed(mut self, seed: u64) -> Self {
        self.config.router_seed = seed;
        self
    }

    /// Worker threads per shard.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.runtime.workers = workers;
        self
    }

    /// Image rows per work chunk on each shard.
    #[must_use]
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        self.config.runtime.chunk_rows = rows;
        self
    }

    /// Request-queue depth per shard.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.runtime.queue.capacity = capacity;
        self
    }

    /// Frames drained per batch on each shard.
    #[must_use]
    pub fn batch_size(mut self, size: usize) -> Self {
        self.config.runtime.queue.batch_size = size;
        self
    }

    /// Full-queue behaviour on each shard.
    #[must_use]
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.config.runtime.queue.backpressure = policy;
        self
    }

    /// Per-shard cap on cached temporal stream states.
    #[must_use]
    pub fn stream_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.stream_cache_capacity = capacity;
        self
    }

    /// How model swaps roll across the shards.
    #[must_use]
    pub fn swap_policy(mut self, policy: SwapPolicy) -> Self {
        self.config.swap = policy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the first offending field.
    pub fn build(self) -> Result<ClusterConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One frame of one stream, as submitted to the cluster.
#[derive(Debug, Clone)]
pub struct StreamFrame {
    /// The stream (camera, client connection) the frame belongs to.
    /// All frames of a stream are served by the same shard.
    pub stream: StreamId,
    /// The frame itself.
    pub image: GrayImage,
}

/// A sharded, replicated serving tier over the detection runtime.
///
/// Frames are routed by stream id to one of `shards` replicas, each an
/// owned swappable model with its own worker pool, request queue and
/// (optional) fallback floor. Determinism contract: with a fixed router
/// seed and shard count, per-stream results are bit-identical to a
/// single [`DetectionServer`](pcnn_runtime::DetectionServer) run on the
/// same frames, regardless of per-shard worker counts.
#[derive(Debug)]
pub struct Cluster {
    router: Mutex<ShardRouter>,
    shards: Vec<Shard>,
    config: ClusterConfig,
    frames_routed: AtomicU64,
    frames_shed: AtomicU64,
    swaps: AtomicU64,
}

impl Cluster {
    /// A cluster of `config.shards` replicas, each warm-started from
    /// `snapshot` (generation 0).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a degenerate configuration, or any
    /// snapshot-rebuild failure from
    /// [`TrainedDetector::from_snapshot`].
    pub fn new(snapshot: &DetectorSnapshot, config: ClusterConfig) -> Result<Self> {
        Self::with_engine(snapshot, config, DetectorConfig::default())
    }

    /// Like [`new`](Cluster::new) with an explicit detection-engine
    /// configuration (pyramid, NMS) shared by every shard.
    pub fn with_engine(
        snapshot: &DetectorSnapshot,
        config: ClusterConfig,
        engine: DetectorConfig,
    ) -> Result<Self> {
        config.validate()?;
        let router = ShardRouter::new(config.shards, config.router_seed)?;
        let shards = (0..config.shards)
            .map(|id| {
                let detector = TrainedDetector::from_snapshot(snapshot)?;
                Ok(Shard::new(id, detector, config.runtime, engine, config.stream_cache_capacity))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Cluster {
            router: Mutex::new(router),
            shards,
            config,
            frames_routed: AtomicU64::new(0),
            frames_shed: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        })
    }

    /// Warm-starts a cluster from the newest valid snapshot in a
    /// [`CheckpointDir`] — the serving-side counterpart of
    /// resume-from-checkpoint training.
    ///
    /// # Errors
    ///
    /// [`Error::MissingEntry`] when the directory holds no usable
    /// snapshot, plus everything [`new`](Cluster::new) can raise.
    pub fn warm_start(dir: &CheckpointDir, config: ClusterConfig) -> Result<Self> {
        let Some((_, snapshot)) = dir.load_latest::<DetectorSnapshot>()? else {
            return Err(Error::MissingEntry {
                what: format!("detector snapshot in {}", dir.path().display()),
            });
        };
        Self::new(&snapshot, config)
    }

    /// Registers a fallback floor rebuilt from `snapshot` and shared by
    /// every shard: a batch whose live model fails its canary probe is
    /// served by the floor instead (counted as degraded in the shard
    /// report), so shard faults cost accuracy, never availability.
    ///
    /// # Errors
    ///
    /// Snapshot-rebuild failures from
    /// [`TrainedDetector::from_snapshot`].
    pub fn set_fallback(&mut self, snapshot: &DetectorSnapshot) -> Result<()> {
        let floor = Arc::new(ShardModel::new(TrainedDetector::from_snapshot(snapshot)?, 0));
        for shard in &mut self.shards {
            shard.set_fallback(Arc::clone(&floor));
        }
        Ok(())
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shards, by index.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// A cheap, copyable control-plane handle for swaps, drains and
    /// reports from another thread while `serve` runs.
    pub fn handle(&self) -> ClusterHandle<'_> {
        ClusterHandle { cluster: self }
    }

    /// The shard currently serving `stream`.
    pub fn route(&self, stream: StreamId) -> u32 {
        self.router.lock().expect("router lock").route(stream.raw())
    }

    /// Blue/green swap across the shards, honouring the configured
    /// [`SwapPolicy`]: each shard publishes the model rebuilt from
    /// `snapshot`, then drains the batches in flight under older
    /// generations. Queued frames are untouched throughout — every
    /// submitted frame is served exactly once, by exactly one model
    /// generation — and every shard's temporal stream caches are
    /// invalidated once its drain completes, so the new generation
    /// never serves cells extracted by the old one. Returns the last
    /// shard's new generation.
    ///
    /// # Errors
    ///
    /// Snapshot-rebuild failures. Under [`SwapPolicy::Rolling`], shards
    /// already swapped keep the new model (the roll stops, it does not
    /// revert); under [`SwapPolicy::Parallel`] every detector is
    /// rebuilt before any shard changes, so a rebuild failure leaves
    /// the tier untouched.
    pub fn swap_model(&self, snapshot: &DetectorSnapshot) -> Result<u64> {
        let generation = match self.config.swap {
            SwapPolicy::Rolling => {
                let mut generation = 0;
                for shard in &self.shards {
                    let detector = TrainedDetector::from_snapshot(snapshot)?;
                    generation = shard.install(detector);
                }
                generation
            }
            SwapPolicy::Parallel => {
                let detectors = self
                    .shards
                    .iter()
                    .map(|_| TrainedDetector::from_snapshot(snapshot))
                    .collect::<Result<Vec<_>>>()?;
                std::thread::scope(|scope| {
                    let installs: Vec<_> = self
                        .shards
                        .iter()
                        .zip(detectors)
                        .map(|(shard, detector)| scope.spawn(move || shard.install(detector)))
                        .collect();
                    installs
                        .into_iter()
                        .map(|h| h.join().expect("install does not panic"))
                        .last()
                        .expect("validated config has at least one shard")
                })
            }
        };
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Takes a shard out of the routing rotation; its streams re-route
    /// to the surviving shards (which keep their own streams — see
    /// [`ShardRouter`]). Frames already queued for the shard still
    /// drain through it.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an out-of-range shard or when this
    /// would leave no shard in rotation.
    pub fn drain_shard(&self, shard: u32) -> Result<()> {
        self.router.lock().expect("router lock").drain(shard)
    }

    /// Returns a drained shard to the rotation.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an out-of-range shard.
    pub fn restore_shard(&self, shard: u32) -> Result<()> {
        self.router.lock().expect("router lock").restore(shard)
    }

    /// Detects over a single routed frame on the caller's thread (the
    /// one-shot path; streams of frames belong in [`serve`](Cluster::serve)).
    ///
    /// # Errors
    ///
    /// [`Error::WorkerPanic`] when a pipeline stage panicked for this
    /// frame.
    pub fn detect(&self, stream: StreamId, frame: &GrayImage) -> Result<Vec<Detection>> {
        let shard = self.route(stream);
        self.frames_routed.fetch_add(1, Ordering::Relaxed);
        self.shards[shard as usize].run_batch(&[frame]).pop().expect("one frame in, one result out")
    }

    /// Detects over one frame of a video stream on the caller's thread,
    /// using the temporal cache and tracker the routed shard keeps for
    /// `stream`. Frames of a stream must be submitted in capture order.
    ///
    /// # Errors
    ///
    /// [`Error::WorkerPanic`] when a pipeline stage panicked for this
    /// frame; the stream's cache is invalidated and its next frame runs
    /// cold.
    pub fn detect_stream(&self, stream: StreamId, frame: &GrayImage) -> Result<StreamFrameResult> {
        let shard = self.route(stream);
        self.frames_routed.fetch_add(1, Ordering::Relaxed);
        self.shards[shard as usize].run_stream_frame(stream, frame)
    }

    /// Serves interleaved video-stream frames through the sharded tier:
    /// the feeder routes every frame to its shard's queue in input
    /// order while one drainer per shard serves them through
    /// [`Shard::run_stream_frame`]. A single drainer per shard means
    /// each stream's frames are served strictly in submission order, so
    /// temporal caches and trackers observe the stream as a camera
    /// would produce it.
    ///
    /// Returns per-frame outcomes in input order; `None` marks frames
    /// shed by a full shard queue under
    /// [`Backpressure::Reject`](pcnn_runtime::Backpressure::Reject),
    /// and `Some(Err(_))` a frame whose pipeline stage panicked.
    pub fn serve_streams(&self, frames: &[StreamFrame]) -> Vec<Option<Result<StreamFrameResult>>> {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SERVE);
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, frames.len() as u64);
        }
        let queues: Vec<RequestQueue<usize>> =
            self.shards.iter().map(|_| RequestQueue::new(self.config.runtime.queue)).collect();
        let mut results: Vec<Option<Result<StreamFrameResult>>> =
            (0..frames.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let drainers: Vec<_> = self
                .shards
                .iter()
                .zip(&queues)
                .map(|(shard, queue)| {
                    scope.spawn(move || {
                        let mut served: Vec<(usize, Result<StreamFrameResult>)> = Vec::new();
                        while let Some(batch) = queue.pop_batch() {
                            for i in batch {
                                let frame = &frames[i];
                                served
                                    .push((i, shard.run_stream_frame(frame.stream, &frame.image)));
                            }
                        }
                        served
                    })
                })
                .collect();
            let mut shed = 0u64;
            for (i, frame) in frames.iter().enumerate() {
                let shard = self.route(frame.stream);
                self.frames_routed.fetch_add(1, Ordering::Relaxed);
                match queues[shard as usize].push(i) {
                    Ok(_) => {}
                    Err(PushError::Full | PushError::Timeout) => shed += 1,
                    Err(PushError::Closed) => unreachable!("cluster closes queues after feeding"),
                }
            }
            for queue in &queues {
                queue.close();
            }
            self.frames_shed.fetch_add(shed, Ordering::Relaxed);
            for drainer in drainers {
                match drainer.join() {
                    Ok(served) => {
                        for (i, outcome) in served {
                            results[i] = Some(outcome);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        drop(span);
        results
    }

    /// Serves a stream of frames through the sharded tier: a feeder
    /// thread routes every frame to its shard's queue in input order
    /// while one drainer per shard executes batches on that shard's
    /// worker pool.
    ///
    /// Returns per-frame detections in input order; `None` marks frames
    /// shed by a full shard queue under
    /// [`Backpressure::Reject`](pcnn_runtime::Backpressure::Reject).
    /// With [`Backpressure::Block`](pcnn_runtime::Backpressure::Block)
    /// every slot is `Some`.
    ///
    /// # Panics
    ///
    /// Re-raises per-frame worker panics, like
    /// [`DetectionServer::detect_batch`](pcnn_runtime::DetectionServer::detect_batch).
    pub fn serve(&self, frames: &[StreamFrame]) -> Vec<Option<Vec<Detection>>> {
        self.serve_paced(frames, None, None)
    }

    /// [`serve`](Cluster::serve) with optional open-loop pacing and
    /// per-frame latency accounting, shared with the load harness.
    ///
    /// `at_us[i]` (when given) is frame `i`'s scheduled submission time
    /// relative to the serve start; the feeder sleeps until then and
    /// submits regardless of downstream progress (open loop).
    /// `latency` (when given) records each served frame's
    /// schedule-to-completion time in microseconds, so queueing delay —
    /// including delay the feeder never observes — lands in the
    /// histogram.
    pub(crate) fn serve_paced(
        &self,
        frames: &[StreamFrame],
        at_us: Option<&[u64]>,
        latency: Option<&pcnn_runtime::Histogram>,
    ) -> Vec<Option<Vec<Detection>>> {
        let span = pcnn_trace::span(pcnn_trace::stages::CLUSTER_SERVE);
        if span.is_recording() {
            span.add(pcnn_trace::Counter::Frames, frames.len() as u64);
        }
        let queues: Vec<RequestQueue<usize>> =
            self.shards.iter().map(|_| RequestQueue::new(self.config.runtime.queue)).collect();
        let start = Instant::now();
        let mut results: Vec<Option<Vec<Detection>>> = (0..frames.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let drainers: Vec<_> = self
                .shards
                .iter()
                .zip(&queues)
                .map(|(shard, queue)| {
                    scope.spawn(move || {
                        let mut served: Vec<(usize, Vec<Detection>)> = Vec::new();
                        while let Some(batch) = queue.pop_batch() {
                            let imgs: Vec<&GrayImage> =
                                batch.iter().map(|&i| &frames[i].image).collect();
                            let dets = shard.run_batch(&imgs);
                            let done_us = start.elapsed().as_micros() as u64;
                            for (&i, det) in batch.iter().zip(dets) {
                                let det = det.unwrap_or_else(|e| panic!("{e}"));
                                if let (Some(at), Some(hist)) = (at_us, latency) {
                                    hist.record(done_us.saturating_sub(at[i]));
                                }
                                served.push((i, det));
                            }
                        }
                        served
                    })
                })
                .collect();
            // The feeder runs on the calling thread: route each frame in
            // input order, pacing against the schedule when one is given.
            let mut shed = 0u64;
            for (i, frame) in frames.iter().enumerate() {
                if let Some(at) = at_us {
                    let due = Duration::from_micros(at[i]);
                    let now = start.elapsed();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let shard = self.route(frame.stream);
                self.frames_routed.fetch_add(1, Ordering::Relaxed);
                match queues[shard as usize].push(i) {
                    Ok(_) => {}
                    Err(PushError::Full | PushError::Timeout) => shed += 1,
                    Err(PushError::Closed) => unreachable!("cluster closes queues after feeding"),
                }
            }
            for queue in &queues {
                queue.close();
            }
            self.frames_shed.fetch_add(shed, Ordering::Relaxed);
            for drainer in drainers {
                match drainer.join() {
                    Ok(served) => {
                        for (i, det) in served {
                            results[i] = Some(det);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        drop(span);
        results
    }

    /// Snapshots the whole tier: every shard's accumulated
    /// [`RuntimeReport`](pcnn_runtime::RuntimeReport), their merged
    /// aggregate, routing/shedding/swap counters and the live trace
    /// summary when a tracer is installed.
    pub fn report(&self) -> ClusterReport {
        let router = self.router.lock().expect("router lock");
        let shards: Vec<ShardReport> = self
            .shards
            .iter()
            .map(|s| ShardReport {
                shard: s.id(),
                generation: s.generation(),
                swaps: s.swaps(),
                drained: router.is_drained(s.id()),
                report: s.report(),
            })
            .collect();
        drop(router);
        let zero = Metrics::new().report(0, None);
        let mut aggregate = shards.iter().fold(zero, |acc, s| acc.merge(&s.report));
        // Per-shard trace summaries all snapshot the same process-global
        // tracer; surface one fresh snapshot at the top level instead.
        aggregate.trace = None;
        ClusterReport {
            shards,
            aggregate,
            frames_routed: self.frames_routed.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            trace: pcnn_trace::profile_snapshot().map(pcnn_runtime::TraceSummary::from),
        }
    }
}

/// A copyable control-plane view of a [`Cluster`]: swap models, drain
/// and restore shards, and snapshot reports — typically from a
/// supervisor thread while the data plane serves.
#[derive(Debug, Clone, Copy)]
pub struct ClusterHandle<'c> {
    cluster: &'c Cluster,
}

impl ClusterHandle<'_> {
    /// See [`Cluster::swap_model`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::swap_model`].
    pub fn swap_model(&self, snapshot: &DetectorSnapshot) -> Result<u64> {
        self.cluster.swap_model(snapshot)
    }

    /// See [`Cluster::drain_shard`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::drain_shard`].
    pub fn drain_shard(&self, shard: u32) -> Result<()> {
        self.cluster.drain_shard(shard)
    }

    /// See [`Cluster::restore_shard`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::restore_shard`].
    pub fn restore_shard(&self, shard: u32) -> Result<()> {
        self.cluster.restore_shard(shard)
    }

    /// See [`Cluster::report`].
    pub fn report(&self) -> ClusterReport {
        self.cluster.report()
    }
}
