//! Deterministic stream-to-shard routing by rendezvous hashing.
//!
//! Every frame carries a stream id (a camera, a client connection); the
//! router assigns each stream to one shard so a stream's frames are
//! always served — and therefore ordered, batched and swapped —
//! together. Rendezvous (highest-random-weight) hashing gives the two
//! properties a serving tier needs:
//!
//! * **determinism** — the assignment is a pure function of
//!   `(seed, stream id, shard)` built on a fixed 64-bit mixer, so the
//!   same configuration routes the same streams to the same shards in
//!   every process, on every release (pinned by a golden test);
//! * **minimal disruption** — draining a shard moves *only* the streams
//!   that lived on it; every other stream keeps its shard, so a rolling
//!   drain never reshuffles healthy replicas.

use pcnn_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// The `splitmix64` finalizer: a fixed, well-mixed 64-bit permutation.
/// This constant mixer *is* the routing contract — changing it would
/// silently re-route every stream across a release boundary, which the
/// golden hash-stability test exists to catch.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic, serde-able rendezvous router over `shards` shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: u32,
    seed: u64,
    /// Shards currently out of rotation (draining for maintenance or a
    /// rolling swap). Kept sorted and duplicate-free so serialization
    /// is canonical.
    drained: Vec<u32>,
}

impl ShardRouter {
    /// A router over `shards` shards, salted by `seed`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `shards` is zero.
    pub fn new(shards: u32, seed: u64) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidConfig {
                what: "router.shards".to_owned(),
                reason: "shard count must be positive".to_owned(),
            });
        }
        Ok(ShardRouter { shards, seed, drained: Vec::new() })
    }

    /// Total shards, drained ones included.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Shards currently in rotation, ascending.
    pub fn active(&self) -> Vec<u32> {
        (0..self.shards).filter(|&s| !self.is_drained(s)).collect()
    }

    /// Whether `shard` is currently drained.
    pub fn is_drained(&self, shard: u32) -> bool {
        self.drained.binary_search(&shard).is_ok()
    }

    /// Takes `shard` out of rotation. Streams it served re-route to the
    /// surviving shards; every other stream keeps its assignment.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `shard` is out of range or when
    /// draining it would leave no shard in rotation.
    pub fn drain(&mut self, shard: u32) -> Result<()> {
        if shard >= self.shards {
            return Err(Error::InvalidConfig {
                what: "router.drain".to_owned(),
                reason: format!("shard {shard} out of range (cluster has {})", self.shards),
            });
        }
        if self.active().len() == 1 && !self.is_drained(shard) {
            return Err(Error::InvalidConfig {
                what: "router.drain".to_owned(),
                reason: "cannot drain the last shard in rotation".to_owned(),
            });
        }
        if let Err(slot) = self.drained.binary_search(&shard) {
            self.drained.insert(slot, shard);
        }
        Ok(())
    }

    /// Returns `shard` to rotation; its original streams route back to
    /// it (rendezvous weights never changed).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `shard` is out of range.
    pub fn restore(&mut self, shard: u32) -> Result<()> {
        if shard >= self.shards {
            return Err(Error::InvalidConfig {
                what: "router.restore".to_owned(),
                reason: format!("shard {shard} out of range (cluster has {})", self.shards),
            });
        }
        if let Ok(slot) = self.drained.binary_search(&shard) {
            self.drained.remove(slot);
        }
        Ok(())
    }

    /// The rendezvous weight of `stream` on `shard`.
    fn weight(&self, stream: u64, shard: u32) -> u64 {
        mix(self.seed ^ mix(stream) ^ mix(u64::from(shard).wrapping_mul(0xa24b_aed4_963e_e407)))
    }

    /// The shard serving `stream`: the in-rotation shard with the
    /// highest rendezvous weight. Ties (astronomically unlikely under a
    /// 64-bit mixer) break toward the lowest shard index so the answer
    /// stays total and deterministic.
    pub fn route(&self, stream: u64) -> u32 {
        debug_assert!(!self.active().is_empty(), "drain() keeps at least one shard in rotation");
        (0..self.shards)
            .filter(|&s| !self.is_drained(s))
            .max_by(|&a, &b| {
                self.weight(stream, a).cmp(&self.weight(stream, b)).then(b.cmp(&a))
                // prefer the lower index on a tie
            })
            .expect("at least one shard in rotation")
    }

    /// The failover shard for `stream`: the in-rotation shard with the
    /// *second*-highest rendezvous weight — where the stream would land
    /// if its primary were drained, and therefore where a deadline-at-
    /// risk frame is hedged. `None` when only one shard is in rotation.
    /// Deterministic like [`route`](ShardRouter::route), and consistent
    /// with it: draining the primary makes `route` return exactly this
    /// shard.
    pub fn failover(&self, stream: u64) -> Option<u32> {
        let primary = self.route(stream);
        (0..self.shards)
            .filter(|&s| !self.is_drained(s) && s != primary)
            .max_by(|&a, &b| self.weight(stream, a).cmp(&self.weight(stream, b)).then(b.cmp(&a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_rejected() {
        assert!(ShardRouter::new(0, 1).is_err());
    }

    #[test]
    fn route_is_deterministic_and_in_range() {
        let router = ShardRouter::new(5, 42).unwrap();
        for stream in 0..200u64 {
            let shard = router.route(stream);
            assert!(shard < 5);
            assert_eq!(shard, router.route(stream), "stream {stream} routes unstably");
        }
    }

    #[test]
    fn streams_spread_across_shards() {
        let router = ShardRouter::new(4, 7).unwrap();
        let mut counts = [0usize; 4];
        for stream in 0..400u64 {
            counts[router.route(stream) as usize] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 40, "shard {shard} serves only {count}/400 streams");
        }
    }

    #[test]
    fn failover_is_where_the_stream_lands_when_its_primary_drains() {
        let mut router = ShardRouter::new(4, 11).unwrap();
        for stream in 0..100u64 {
            let primary = router.route(stream);
            let failover = router.failover(stream).expect("4 shards in rotation");
            assert_ne!(failover, primary);
            router.drain(primary).unwrap();
            assert_eq!(router.route(stream), failover, "stream {stream}");
            router.restore(primary).unwrap();
        }
        // A single-shard rotation has nowhere to fail over to.
        let solo = ShardRouter::new(1, 0).unwrap();
        assert_eq!(solo.failover(5), None);
    }

    #[test]
    fn cannot_drain_last_active_shard() {
        let mut router = ShardRouter::new(2, 0).unwrap();
        router.drain(0).unwrap();
        assert!(router.drain(1).is_err());
        // Draining an already-drained shard is idempotent, not an error.
        router.drain(0).unwrap();
        router.restore(0).unwrap();
        assert_eq!(router.active(), vec![0, 1]);
        assert!(router.drain(9).is_err());
        assert!(router.restore(9).is_err());
    }
}
