//! Seeded fault injection for the cluster tier.
//!
//! [`ChaosPlan`] extends the runtime's per-frame
//! [`PanicInjector`](pcnn_runtime::PanicInjector) to whole-tier fault
//! classes: killing a shard's serve loop outright, stalling a drainer
//! long enough for the watchdog to condemn it, failing a single frame's
//! first attempt (exercising the edge retry), and corrupting the newest
//! checkpoint right before a respawn reads it (exercising the
//! corrupt-newest fallback in [`CheckpointDir::load_latest`]).
//!
//! Every trigger keys off *frame counts*, never wall time: event
//! `at_frame = t` fires when the target shard begins serving its
//! `t`-th stream frame (0-based, counted across respawns, retries of a
//! frame counted once). That makes a plan's effect on the
//! failover/respawn/retry counters a pure function of the plan and the
//! submitted frames — the determinism contract
//! `crates/cluster/tests/failover.rs` pins across seeds and worker
//! counts.
//!
//! [`CheckpointDir::load_latest`]: pcnn_store::CheckpointDir::load_latest

use pcnn_core::{Error, Result};
use pcnn_store::CheckpointDir;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosEvent {
    /// Panic the shard's serve loop just before it serves its
    /// `at_frame`-th frame — a hard shard death. The frame (and
    /// everything queued behind it) fails over to the survivors; the
    /// shard respawns from the latest checkpoint.
    KillShard {
        /// The shard whose drainer dies.
        shard: u32,
        /// Frames the shard serves before dying (0-based trigger).
        at_frame: u64,
    },
    /// Put the shard's drainer to sleep for `for_ms` before serving its
    /// `at_frame`-th frame, with a frame registered in flight — exactly
    /// what a wedged worker looks like to the [`Watchdog`]. A stalled
    /// drainer wakes, notices it was condemned, and hands its unserved
    /// frames back for re-routing.
    ///
    /// [`Watchdog`]: pcnn_runtime::Watchdog
    StallShard {
        /// The shard whose drainer stalls.
        shard: u32,
        /// Frames the shard serves before stalling (0-based trigger).
        at_frame: u64,
        /// How long the drainer sleeps, in milliseconds.
        for_ms: u64,
    },
    /// Fail the first serve attempt of the shard's `at_frame`-th frame
    /// (as if a worker panicked), leaving the stream's state untouched
    /// — the deadline-aware edge retry serves it on the next attempt.
    FailFrame {
        /// The shard whose frame fails once.
        shard: u32,
        /// Frames the shard serves before the failure (0-based trigger).
        at_frame: u64,
    },
    /// Corrupt the newest checkpoint file before the next respawn loads
    /// it, forcing [`CheckpointDir::load_latest`]'s corrupt-newest
    /// fallback onto the respawn path.
    ///
    /// [`CheckpointDir::load_latest`]: pcnn_store::CheckpointDir::load_latest
    CorruptNewestCheckpoint,
}

/// A seeded, serde-able script of cluster faults, consumed by
/// [`Cluster::serve_streams_with`](crate::Cluster::serve_streams_with).
/// Each event fires at most once per serve call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed recorded with the plan; [`seeded`](ChaosPlan::seeded) draws
    /// the events from it, and the edge retry uses it to salt backoff
    /// jitter so replays are bit-identical.
    pub seed: u64,
    /// The scripted faults.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan (no faults) carrying `seed` for jitter salting.
    pub fn new(seed: u64) -> Self {
        ChaosPlan { seed, events: Vec::new() }
    }

    /// This plan with one more scripted fault.
    #[must_use]
    pub fn with_event(mut self, event: ChaosEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Draws a representative fault script from `seed` for a tier of
    /// `shards` shards serving about `frames` frames: one shard kill in
    /// the first half of its expected frame share, one single-frame
    /// failure on a different shard (when the tier has one), and a
    /// corrupted newest checkpoint half the time. Same seed, same plan
    /// — byte for byte.
    pub fn seeded(seed: u64, shards: u32, frames: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut rng = SmallRng::seed_from_u64(seed);
        let share = (frames as u64 / u64::from(shards)).max(2);
        let victim = rng.random_range(0..u64::from(shards)) as u32;
        let kill_at = rng.random_range(1..share.max(2));
        let mut plan = ChaosPlan::new(seed)
            .with_event(ChaosEvent::KillShard { shard: victim, at_frame: kill_at });
        if shards > 1 {
            let other = (victim + 1 + rng.random_range(0..u64::from(shards - 1)) as u32) % shards;
            let fail_at = rng.random_range(0..share.max(2));
            plan = plan.with_event(ChaosEvent::FailFrame { shard: other, at_frame: fail_at });
        }
        if rng.random_range(0..2u32) == 1 {
            plan = plan.with_event(ChaosEvent::CorruptNewestCheckpoint);
        }
        plan
    }
}

/// What a drainer must do before serving its next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChaosAction {
    /// Panic the serve loop (hard shard death).
    Kill,
    /// Sleep this long with the frame registered in flight.
    Stall(Duration),
    /// Fail the frame's first serve attempt.
    Fail,
}

/// A [`ChaosPlan`] armed for one serve call: per-shard frame counters
/// plus fire-once latches.
#[derive(Debug)]
pub(crate) struct ActiveChaos {
    events: Vec<ChaosEvent>,
    fired: Vec<AtomicBool>,
    attempts: Vec<AtomicU64>,
    corrupt_pending: AtomicBool,
}

impl ActiveChaos {
    pub(crate) fn new(plan: &ChaosPlan, shards: u32) -> Self {
        let corrupt = plan.events.iter().any(|e| matches!(e, ChaosEvent::CorruptNewestCheckpoint));
        ActiveChaos {
            events: plan.events.clone(),
            fired: plan.events.iter().map(|_| AtomicBool::new(false)).collect(),
            attempts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            corrupt_pending: AtomicBool::new(corrupt),
        }
    }

    /// Called by shard `shard`'s drainer as it begins serving a frame;
    /// counts the frame and returns the scripted action, if any event
    /// targets exactly this (shard, frame) and has not fired yet.
    pub(crate) fn on_frame(&self, shard: u32) -> Option<ChaosAction> {
        let n = self.attempts[shard as usize].fetch_add(1, Ordering::Relaxed);
        for (event, fired) in self.events.iter().zip(&self.fired) {
            let action = match *event {
                ChaosEvent::KillShard { shard: s, at_frame } if s == shard && at_frame == n => {
                    ChaosAction::Kill
                }
                ChaosEvent::StallShard { shard: s, at_frame, for_ms }
                    if s == shard && at_frame == n =>
                {
                    ChaosAction::Stall(Duration::from_millis(for_ms))
                }
                ChaosEvent::FailFrame { shard: s, at_frame } if s == shard && at_frame == n => {
                    ChaosAction::Fail
                }
                _ => continue,
            };
            if !fired.swap(true, Ordering::Relaxed) {
                return Some(action);
            }
        }
        None
    }

    /// Whether a pending [`ChaosEvent::CorruptNewestCheckpoint`] should
    /// strike the respawn about to happen; consumes the charge.
    pub(crate) fn take_corrupt_checkpoint(&self) -> bool {
        self.corrupt_pending.swap(false, Ordering::Relaxed)
    }
}

/// Corrupts the newest checkpoint in `dir` by flipping its final byte —
/// the envelope checksum no longer matches, so the next
/// [`load_latest`](CheckpointDir::load_latest) skips it and falls back
/// to the next-newest valid snapshot. Returns the corrupted epoch, or
/// `None` when the directory holds no checkpoints.
///
/// # Errors
///
/// [`Error::Io`] when the directory cannot be listed or the file cannot
/// be rewritten.
pub fn corrupt_newest_checkpoint(dir: &CheckpointDir) -> Result<Option<usize>> {
    let Some(&epoch) = dir.epochs()?.last() else {
        return Ok(None);
    };
    let path = dir.path_for(epoch);
    let io = |reason: std::io::Error| Error::Io {
        path: path.display().to_string(),
        reason: reason.to_string(),
    };
    let mut bytes = std::fs::read(&path).map_err(io)?;
    if let Some(last) = bytes.last_mut() {
        *last ^= 0xFF;
    }
    std::fs::write(&path, bytes).map_err(io)?;
    Ok(Some(epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = ChaosPlan::seeded(seed, 3, 60);
            assert_eq!(a, ChaosPlan::seeded(seed, 3, 60), "seed {seed} must replay");
            assert!(a.events.iter().any(|e| matches!(e, ChaosEvent::KillShard { .. })));
            for event in &a.events {
                match *event {
                    ChaosEvent::KillShard { shard, at_frame } => {
                        assert!(shard < 3);
                        assert!((1..20).contains(&at_frame));
                    }
                    ChaosEvent::FailFrame { shard, at_frame } => {
                        assert!(shard < 3);
                        assert!(at_frame < 20);
                    }
                    ChaosEvent::StallShard { shard, .. } => assert!(shard < 3),
                    ChaosEvent::CorruptNewestCheckpoint => {}
                }
            }
        }
        assert_ne!(ChaosPlan::seeded(1, 3, 60), ChaosPlan::seeded(2, 3, 60));
    }

    #[test]
    fn events_fire_once_at_their_exact_frame() {
        let plan = ChaosPlan::new(0)
            .with_event(ChaosEvent::FailFrame { shard: 1, at_frame: 2 })
            .with_event(ChaosEvent::CorruptNewestCheckpoint);
        let active = ActiveChaos::new(&plan, 2);
        assert_eq!(active.on_frame(0), None, "wrong shard");
        assert_eq!(active.on_frame(1), None, "frame 0");
        assert_eq!(active.on_frame(1), None, "frame 1");
        assert_eq!(active.on_frame(1), Some(ChaosAction::Fail), "frame 2 fires");
        assert_eq!(active.on_frame(1), None, "fired events stay quiet");
        assert!(active.take_corrupt_checkpoint());
        assert!(!active.take_corrupt_checkpoint(), "one charge only");
    }
}
