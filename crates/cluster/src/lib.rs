//! # pcnn-cluster — sharded, replicated detection serving
//!
//! The multi-replica tier over [`pcnn_runtime`]'s single
//! [`DetectionServer`](pcnn_runtime::DetectionServer): N detector
//! shards behind a deterministic stream router, built for rolling model
//! upgrades under sustained load.
//!
//! * [`router`] — [`ShardRouter`]: rendezvous (highest-random-weight)
//!   hashing on stream id, deterministic across processes and releases,
//!   serde-able, with drain/restore moving only the drained shard's
//!   streams;
//! * [`shard`] — [`Shard`]: one replica owning a swappable
//!   [`TrainedDetector`](pcnn_core::pipeline::TrainedDetector) (warm
//!   started from a [`pcnn_store`] snapshot), serving batches on its
//!   own worker pool with install-time canary health probes feeding a
//!   per-shard fallback floor;
//! * [`cluster`] — [`Cluster`] / [`ClusterHandle`]: the data plane
//!   (feeder + per-shard queues and drainers, load shedding at the
//!   edge, plus [`serve_streams`] for temporal video streams with
//!   per-shard cell caches and trackers) and the control plane
//!   (blue/green [`swap_model`] drains each shard — rolling or all at
//!   once per [`SwapPolicy`] — with zero dropped frames and stream
//!   caches invalidated at install);
//! * [`report`] — [`ClusterReport`]: every shard's
//!   [`RuntimeReport`](pcnn_runtime::RuntimeReport) plus their merge;
//! * [`loadgen`] — seeded open-loop Poisson load and the SLO harness
//!   judging p50/p99 schedule-to-completion latency against budgets.
//!
//! ## Determinism
//!
//! Routing is a pure function of `(seed, stream id, shard count)`, and
//! each shard's parallel pipeline is bit-identical to the serial path,
//! so a fixed-seed cluster produces bit-identical per-stream results to
//! a single server run on the same frames — regardless of per-shard
//! worker counts. Pinned by `tests/cluster_serving.rs`.
//!
//! ## Swap protocol
//!
//! [`swap_model`] rebuilds the detector from a snapshot per shard, then
//! rolls: publish to shard 0, drain its in-flight batches, move on.
//! Queued frames flow throughout; every submitted frame is served
//! exactly once, by exactly one model generation
//! (`tests/swap.rs`).
//!
//! [`swap_model`]: Cluster::swap_model
//! [`serve_streams`]: Cluster::serve_streams
//! [`SwapPolicy`]: cluster::SwapPolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod loadgen;
pub mod report;
pub mod router;
pub mod shard;

pub use chaos::{corrupt_newest_checkpoint, ChaosEvent, ChaosPlan};
pub use cluster::{
    Cluster, ClusterConfig, ClusterConfigBuilder, ClusterHandle, StreamFrame, StreamOutcome,
    SupervisionConfig, SwapPolicy,
};
pub use loadgen::{arrivals, run_slo, run_stream_slo, Arrival, LoadProfile, SloBudget, SloReport};
pub use report::{ClusterReport, ShardReport};
pub use router::ShardRouter;
pub use shard::{Shard, ShardModel};
