//! Golden-trace conformance: a tiny fixed-seed co-train + detect run
//! under the mock clock must reproduce the checked-in span summary —
//! stage names, nesting and counter values, exactly — and two
//! consecutive runs must serialize to bit-identical Chrome JSON.
//!
//! The fixture (`tests/fixtures/golden_summary.txt`) aggregates spans
//! by path (ancestor names joined with `/`), so it pins the span tree
//! without embedding clock values. Any intentional change to the
//! instrumentation — a renamed stage, new nesting, different counter
//! attribution — shows up as a fixture diff. To accept a new baseline,
//! re-run with the update env var and commit the rewritten file:
//!
//! ```text
//! PCNN_UPDATE_GOLDEN=1 cargo test -p pcnn-trace --test golden
//! ```

use pcnn_core::cotrain::{PartitionedSystem, TrainSetConfig};
use pcnn_core::pipeline::{Detector, TrainedDetector};
use pcnn_core::{EednClassifierConfig, Extractor};
use pcnn_hog::BlockNorm;
use pcnn_runtime::{DetectionServer, RuntimeConfig};
use pcnn_trace::{Clock, Trace, Tracer};
use pcnn_truenorth::{NeuroCore, NeuroCoreBuilder, NeuronConfig, SpikeTarget, System};
use pcnn_vision::{SynthConfig, SynthDataset};
use std::ops::ControlFlow;
use std::path::PathBuf;

const FIXTURE: &str = "tests/fixtures/golden_summary.txt";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

/// Neuron 0 fires whenever axon 0 spikes; output goes to `out`.
fn relay_core(out: SpikeTarget) -> NeuroCore {
    let mut b = NeuroCoreBuilder::new();
    b.connect(0, 0);
    b.set_neuron(0, NeuronConfig::excitatory(&[1, 0, 0, 0], 1));
    b.route_neuron(0, out);
    b.build()
}

/// The fixed-seed workload: a short simulator run, a tiny co-train, a
/// checkpoint round-trip and a two-frame serial detection batch. Every
/// instrumented subsystem contributes spans; everything is
/// deterministic at these seeds.
fn run_workload() {
    // TrueNorth: a two-core relay ticked 8 times — cheap, and the
    // tick/delivery/routing counters are exactly predictable.
    let mut sys = System::new();
    let sink = sys.add_core(relay_core(SpikeTarget::output(3)));
    let src = sys.add_core(relay_core(SpikeTarget::axon(sink, 0)));
    sys.inject(src, 0);
    sys.run(8);

    // Co-train: descriptor collection plus two epochs over a small
    // training set (full-precision extractor keeps it fast).
    let ds = SynthDataset::new(SynthConfig::default());
    let detector = PartitionedSystem::train_eedn_detector_with(
        Extractor::napprox_fp(BlockNorm::None),
        &ds,
        TrainSetConfig { n_pos: 8, n_neg: 8, mining_scenes: 0, mining_rounds: 0 },
        EednClassifierConfig { hidden1: 24, hidden2: 12, epochs: 2, ..Default::default() },
        None,
        |_| ControlFlow::Continue(()),
    )
    .expect("training succeeds");

    // Store: snapshot round-trip through the envelope format.
    let dir = std::env::temp_dir().join(format!(
        "pcnn-trace-golden-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("detector.ckpt");
    pcnn_store::save(&path, &detector.to_snapshot()).expect("snapshot saves");
    let snap: pcnn_core::DetectorSnapshot = pcnn_store::load(&path).expect("snapshot loads");
    let restored = TrainedDetector::from_snapshot(&snap).expect("snapshot restores");
    std::fs::remove_dir_all(&dir).ok();

    // Serve: two window-sized frames through a serial (single-lane)
    // batch — the Eedn classifier routes inference through eedn.infer.
    let config = RuntimeConfig::builder().workers(1).build().expect("valid config");
    let server = DetectionServer::new(Detector::default(), &restored, config).expect("server");
    let frames = [ds.train_positive(100), ds.train_negative(100)];
    let refs: Vec<_> = frames.iter().collect();
    let _ = server.detect_batch(&refs);
}

/// Serializes the two tests: the tracer is process-global state.
static TRACER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Installs a fresh mock-clock tracer, runs the workload, drains.
/// Callers must hold [`TRACER_LOCK`].
fn traced_run() -> Trace {
    let tracer = Tracer::install(Clock::mock());
    run_workload();
    let trace = tracer.drain();
    Tracer::uninstall();
    trace
}

#[test]
fn golden_trace_matches_fixture_and_is_bit_identical() {
    let _lock = TRACER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let trace = traced_run();
    let summary = trace.render_summary();

    // 1. Sanity: all six instrumented layers contributed spans.
    for stage in [
        pcnn_trace::stages::TRUENORTH_TICK,
        pcnn_trace::stages::KERNELS_GEMM,
        pcnn_trace::stages::EEDN_FORWARD,
        pcnn_trace::stages::EEDN_BACKWARD,
        pcnn_trace::stages::EEDN_INFER,
        pcnn_trace::stages::COTRAIN_TRAIN,
        pcnn_trace::stages::COTRAIN_COLLECT,
        pcnn_trace::stages::COTRAIN_EPOCH,
        pcnn_trace::stages::RUNTIME_BATCH,
        pcnn_trace::stages::RUNTIME_CLASSIFY,
        pcnn_trace::stages::STORE_SAVE,
        pcnn_trace::stages::STORE_LOAD,
    ] {
        assert!(
            trace.spans().any(|s| s.name == stage),
            "workload produced no '{stage}' span:\n{summary}"
        );
    }

    // 2. The serial workload records on exactly one lane, so the span
    // tree (and the fixture) is a single deterministic sequence.
    assert_eq!(trace.lanes.len(), 1, "serial workload must be single-lane");
    assert_eq!(trace.dropped, 0);

    // 3. Exact conformance against the checked-in fixture.
    let path = fixture_path();
    if std::env::var_os("PCNN_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture has a parent")).expect("fixture dir");
        std::fs::write(&path, &summary).expect("fixture writes");
        eprintln!("golden fixture rewritten: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             PCNN_UPDATE_GOLDEN=1 cargo test -p pcnn-trace --test golden",
            path.display()
        )
    });
    assert_eq!(
        summary, expected,
        "span summary diverged from the golden fixture; if the change is \
         intentional, regenerate with PCNN_UPDATE_GOLDEN=1 and commit"
    );

    // 4. Determinism modulo wall-clock: a second run of the same
    // workload under a fresh mock clock serializes to bit-identical
    // Chrome JSON — names, nesting, ordering, counters AND timestamps.
    let again = traced_run();
    assert_eq!(
        trace.to_chrome_json(),
        again.to_chrome_json(),
        "two mock-clock runs must be bit-identical"
    );
    assert_eq!(trace, again, "drained traces must compare equal record-for-record");
}

#[test]
fn golden_counters_are_exact() {
    let _lock = TRACER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    use pcnn_trace::Counter;
    let trace = traced_run();

    // The relay: 1 injected spike, 8 ticks. The source fires on tick 1
    // and relays to the sink, which fires and emits one output spike.
    assert_eq!(trace.counter_total(pcnn_trace::stages::TRUENORTH_TICK, Counter::Ticks), 8);
    assert_eq!(
        trace.counter_total(pcnn_trace::stages::TRUENORTH_TICK, Counter::SpikesDelivered),
        2,
        "host injection + relayed spike"
    );
    assert_eq!(trace.counter_total(pcnn_trace::stages::TRUENORTH_TICK, Counter::SpikesRouted), 1);

    // Two epochs, 16 samples per epoch; collection saw all 16 samples.
    assert_eq!(trace.counter_total(pcnn_trace::stages::COTRAIN_EPOCH, Counter::Epochs), 2);
    assert_eq!(trace.counter_total(pcnn_trace::stages::COTRAIN_EPOCH, Counter::Samples), 32);
    assert_eq!(trace.counter_total(pcnn_trace::stages::COTRAIN_COLLECT, Counter::Samples), 16);

    // One two-frame batch; save/load moved the same checkpoint bytes.
    assert_eq!(trace.counter_total(pcnn_trace::stages::RUNTIME_BATCH, Counter::Frames), 2);
    let saved = trace.counter_total(pcnn_trace::stages::STORE_SAVE, Counter::Bytes);
    let loaded = trace.counter_total(pcnn_trace::stages::STORE_LOAD, Counter::Bytes);
    assert!(saved > 0, "save recorded no bytes");
    assert_eq!(saved, loaded, "load must read exactly what save wrote");

    // GEMM flop counts are structural: derived from layer shapes, so
    // any nonzero total is already pinned exactly by the fixture.
    // Training runs the f32 GEMMs (flops); serving inference routes the
    // trinary classifier through the multiply-free path (ops).
    assert!(trace.counter_total(pcnn_trace::stages::KERNELS_GEMM, Counter::Flops) > 0);
    assert!(trace.counter_total(pcnn_trace::stages::KERNELS_GEMM_TRINARY, Counter::Ops) > 0);
    assert_eq!(
        trace.counter_total(pcnn_trace::stages::KERNELS_GEMM_TRINARY, Counter::Flops),
        0,
        "the trinary stage must report ops, never phantom flops"
    );
}
