//! Pins the overhead contract: with no tracer installed, opening and
//! dropping spans and adding counters allocates **nothing** — the whole
//! path is one relaxed atomic load and a branch.
//!
//! The proof uses a counting global allocator, so this file holds
//! exactly one test (the count is process-global; a second test would
//! race it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator {
    allocations: AtomicU64,
}

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATIONS: CountingAllocator = CountingAllocator { allocations: AtomicU64::new(0) };

#[test]
fn disabled_spans_allocate_nothing() {
    assert!(!pcnn_trace::is_enabled(), "no tracer is installed in this process");

    // Warm up once so lazy runtime setup (if any) happens outside the
    // measured window.
    {
        let g = pcnn_trace::span("warmup");
        g.add(pcnn_trace::Counter::Frames, 1);
    }

    let before = ALLOCATIONS.allocations.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let guard = pcnn_trace::span("disabled.hot");
        assert!(!guard.is_recording());
        guard.add(pcnn_trace::Counter::Flops, 123);
        let inner = pcnn_trace::span("disabled.nested");
        inner.add(pcnn_trace::Counter::Ticks, 1);
        drop(inner);
        drop(guard);
    }
    let after = ALLOCATIONS.allocations.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled span path must not allocate");

    // The disabled handle is equally inert.
    let tracer = pcnn_trace::Tracer::disabled();
    let before = ALLOCATIONS.allocations.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let guard = tracer.span("disabled.handle");
        guard.add(pcnn_trace::Counter::Bytes, 9);
    }
    let after = ALLOCATIONS.allocations.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled handle span path must not allocate");
}
