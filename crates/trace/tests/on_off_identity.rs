//! Tracing must be purely observational: enabling it may not perturb a
//! single bit of any instrumented computation. These tests run the two
//! hottest instrumented paths — `System::tick` and the GEMM driver —
//! with and without a tracer installed and compare outputs exactly.

use pcnn_kernels::{gemm, GemmScratch};
use pcnn_trace::{Clock, Counter, Tracer};
use pcnn_truenorth::{NeuroCore, NeuroCoreBuilder, NeuronConfig, SpikeTarget, System, SystemStats};

/// Serializes the tests: the tracer is process-global state.
static TRACER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Deterministic pseudo-random matrix fill (splitmix-style) so both
/// runs see identical inputs without depending on a RNG crate.
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1 << 24) as f32) - 0.5;
    }
}

fn run_gemm() -> Vec<u32> {
    let (m, k, n) = (23, 17, 31);
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut c = vec![0.0f32; m * n];
    fill(&mut a, 0x9e3779b97f4a7c15);
    fill(&mut b, 0x2545f4914f6cdd1d);
    let mut s = GemmScratch::default();
    gemm(&mut s, m, k, n, &a, k, &b, n, &mut c, n);
    // Compare bit patterns, not floats: identity must be exact.
    c.iter().map(|v| v.to_bits()).collect()
}

/// A 3-core ring with mixed weights so membrane dynamics are
/// non-trivial; returns drained output spikes plus final stats.
fn run_ticks() -> (Vec<(u64, u32)>, SystemStats) {
    fn core(fanout: SpikeTarget, weights: &[i32; 4], threshold: i32) -> NeuroCore {
        let mut b = NeuroCoreBuilder::new();
        b.connect(0, 0);
        b.connect(1, 0);
        b.set_neuron(0, NeuronConfig::excitatory(weights, threshold));
        b.route_neuron(0, fanout);
        b.build()
    }
    let mut sys = System::with_seed(7);
    let c0 = sys.add_core(core(SpikeTarget::output(0), &[2, 1, 0, 0], 2));
    let c1 = sys.add_core(core(SpikeTarget::axon(c0, 1), &[1, -1, 0, 0], 1));
    let c2 = sys.add_core(core(SpikeTarget::axon(c1, 0), &[1, 0, 0, 0], 1));
    for t in 0..6 {
        if t % 2 == 0 {
            sys.inject(c2, 0);
        }
        sys.inject(c0, 0);
        sys.run(2);
    }
    (sys.drain_output_spikes(), sys.stats())
}

#[test]
fn gemm_output_identical_with_tracing_on_and_off() {
    let _lock = TRACER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    assert!(!pcnn_trace::is_enabled());
    let off = run_gemm();

    let tracer = Tracer::install(Clock::mock());
    let on = run_gemm();
    let trace = tracer.drain();
    Tracer::uninstall();

    assert_eq!(off, on, "GEMM output must be bit-identical with tracing enabled");
    // The traced run really did record the kernel.
    assert!(trace.counter_total(pcnn_trace::stages::KERNELS_GEMM, Counter::Flops) > 0);

    let off_again = run_gemm();
    assert_eq!(off, off_again, "GEMM output must be bit-identical after uninstall");
}

#[test]
fn system_tick_identical_with_tracing_on_and_off() {
    let _lock = TRACER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    assert!(!pcnn_trace::is_enabled());
    let (spikes_off, stats_off) = run_ticks();

    let tracer = Tracer::install(Clock::mock());
    let (spikes_on, stats_on) = run_ticks();
    let trace = tracer.drain();
    Tracer::uninstall();

    assert_eq!(spikes_off, spikes_on, "output spikes must match with tracing enabled");
    assert_eq!(stats_off, stats_on, "simulator stats must match with tracing enabled");
    assert_eq!(trace.counter_total(pcnn_trace::stages::TRUENORTH_TICK, Counter::Ticks), 12);
}
