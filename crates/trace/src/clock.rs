//! Time sources for span timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where span timestamps come from.
///
/// Timestamps are nanoseconds from an arbitrary per-tracer origin —
/// only differences and ordering are meaningful.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Monotonic wall time, measured from the moment the clock was
    /// created. The production source.
    Wall(Instant),
    /// A deterministic counter that advances by exactly 1 µs per
    /// reading. Two runs of the same serial workload produce
    /// bit-identical timestamps, which is what makes golden-trace
    /// fixtures possible.
    Mock(Arc<AtomicU64>),
}

impl Clock {
    /// A monotonic wall clock starting now.
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// A deterministic mock clock starting at zero.
    pub fn mock() -> Self {
        Clock::Mock(Arc::new(AtomicU64::new(0)))
    }

    /// Nanoseconds since this clock's origin. The mock variant returns
    /// 0, 1000, 2000, … across successive readings (shared between
    /// threads, so concurrent readers still get unique, ordered
    /// values).
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall(base) => base.elapsed().as_nanos() as u64,
            Clock::Mock(counter) => counter.fetch_add(1_000, Ordering::Relaxed),
        }
    }

    /// Whether this is the deterministic mock source.
    pub fn is_mock(&self) -> bool {
        matches!(self, Clock::Mock(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_is_deterministic() {
        let c = Clock::mock();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 1_000);
        assert_eq!(c.now_ns(), 2_000);
        let fresh = Clock::mock();
        assert_eq!(fresh.now_ns(), 0);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
