//! Span-based tracing and profiling for the PCNN workspace.
//!
//! Every hot path in the workspace — `pcnn_truenorth::System::tick`,
//! the `pcnn-kernels` GEMM driver, the `pcnn-eedn` layer passes, the
//! co-training epoch loop, the serving runtime's batch stages, and the
//! checkpoint store — opens a [`fn@span`] carrying a static stage name and
//! typed [`Counter`] increments (ticks, spikes delivered, GEMM flops,
//! frames, bytes checkpointed). Spans nest into a per-thread tree and
//! are exported two ways:
//!
//! * a Chrome `trace_event` JSON document
//!   ([`Trace::to_chrome_json`]) loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev);
//! * a compact aggregate [`ProfileReport`] (per-stage
//!   count/total/min/max/p50/p99).
//!
//! # Determinism contract
//!
//! Tracing is deterministic modulo wall-clock: under
//! [`Clock::mock`] the full span tree — names, nesting, ordering and
//! counter values — is bit-identical across runs at a fixed seed. The
//! golden-trace conformance suite (`tests/golden.rs`) pins that
//! invariant against a checked-in fixture.
//!
//! # Overhead contract
//!
//! With no tracer installed, [`fn@span`] is one relaxed atomic load and a
//! branch; the returned [`SpanGuard`] is inert and **nothing is
//! allocated** (pinned by `tests/disabled_alloc.rs` with a counting
//! allocator). Recording is lock-free: each thread appends to its own
//! buffer and flushes to the shared collector in amortized batches.
//!
//! # Example
//!
//! ```
//! use pcnn_trace::{Clock, Counter, Tracer};
//!
//! let tracer = Tracer::install(Clock::mock());
//! {
//!     let outer = pcnn_trace::span("example.outer");
//!     let inner = pcnn_trace::span("example.inner");
//!     inner.add(Counter::Frames, 2);
//!     drop(inner);
//!     outer.add(Counter::Bytes, 100);
//! }
//! let trace = tracer.drain();
//! assert_eq!(trace.span_count(), 2);
//! assert_eq!(trace.counter_total("example.inner", Counter::Frames), 2);
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! Tracer::uninstall();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod profile;
pub mod span;
pub mod trace;
pub mod tracer;

pub use clock::Clock;
pub use profile::{quantile_from_buckets, ProfileReport, StageProfile};
pub use span::{Counter, SpanRecord, MAX_COUNTERS};
pub use trace::{LaneTrace, Trace};
pub use tracer::{is_enabled, profile_snapshot, span, SpanGuard, Tracer};

/// Stage names used by the workspace's instrumentation, so tests and
/// exporters reference one canonical spelling.
pub mod stages {
    /// One `pcnn_truenorth::System::tick`.
    pub const TRUENORTH_TICK: &str = "truenorth.tick";
    /// One GEMM through the `pcnn-kernels` driver (any variant).
    pub const KERNELS_GEMM: &str = "kernels.gemm";
    /// One bitplane add/sub GEMM through the trinary inference path.
    pub const KERNELS_GEMM_TRINARY: &str = "kernels.gemm_trinary";
    /// One `im2col` patch gather.
    pub const KERNELS_IM2COL: &str = "kernels.im2col";
    /// One `col2im` scatter-accumulate.
    pub const KERNELS_COL2IM: &str = "kernels.col2im";
    /// A whole `Sequential` inference pass.
    pub const EEDN_INFER: &str = "eedn.infer";
    /// A whole `Sequential` training forward pass.
    pub const EEDN_FORWARD: &str = "eedn.forward";
    /// A whole `Sequential` backward pass.
    pub const EEDN_BACKWARD: &str = "eedn.backward";
    /// Descriptor/window collection before co-training.
    pub const COTRAIN_COLLECT: &str = "cotrain.collect";
    /// The full co-training entry point.
    pub const COTRAIN_TRAIN: &str = "cotrain.train";
    /// One training epoch.
    pub const COTRAIN_EPOCH: &str = "cotrain.epoch";
    /// Assembling one request batch in the serving runtime.
    pub const RUNTIME_ASSEMBLE: &str = "runtime.assemble";
    /// One detection batch end to end.
    pub const RUNTIME_BATCH: &str = "runtime.batch";
    /// The pyramid stage of a batch.
    pub const RUNTIME_PYRAMID: &str = "runtime.pyramid";
    /// The cell-extraction stage of a batch.
    pub const RUNTIME_CELLS: &str = "runtime.cells";
    /// The window-classification stage of a batch.
    pub const RUNTIME_CLASSIFY: &str = "runtime.classify";
    /// The non-maximum-suppression stage of a batch.
    pub const RUNTIME_NMS: &str = "runtime.nms";
    /// Probing a stream's temporal cell cache for one frame (carries
    /// the cells_reused/cells_recomputed split).
    pub const RUNTIME_CACHE_PROBE: &str = "runtime.cache_probe";
    /// One tracker update on a stream's detections.
    pub const RUNTIME_TRACK: &str = "runtime.track";
    /// One checkpoint save.
    pub const STORE_SAVE: &str = "store.save";
    /// One checkpoint load.
    pub const STORE_LOAD: &str = "store.load";
    /// One routed serve pass through the cluster tier.
    pub const CLUSTER_SERVE: &str = "cluster.serve";
    /// One batch executed by a cluster shard.
    pub const CLUSTER_SHARD_BATCH: &str = "cluster.shard_batch";
    /// One blue/green model install draining a cluster shard.
    pub const CLUSTER_SWAP: &str = "cluster.swap";
    /// Re-routing a dead shard's streams and queued frames to the
    /// surviving shards (tracker state migrates, cache warmth does not).
    pub const CLUSTER_FAILOVER: &str = "cluster.failover";
    /// Respawning a dead or stalled shard warm from the latest
    /// checkpoint snapshot.
    pub const CLUSTER_RESPAWN: &str = "cluster.respawn";
    /// One deadline-aware retry of a failed stream frame at the
    /// cluster edge.
    pub const CLUSTER_RETRY: &str = "cluster.retry";
}

/// Installs a wall-clock tracer when the `PCNN_TRACE` environment
/// variable is set to a non-empty value other than `0`, and returns
/// whether tracing is enabled afterwards.
///
/// Idempotent and race-free: concurrent callers install at most one
/// tracer, and an already-installed tracer is left untouched. Test
/// suites and examples call this so CI can flip tracing on (the chaos
/// job runs the supervision suite once with `PCNN_TRACE=1`) without a
/// code change.
pub fn init_from_env() -> bool {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let wanted =
            std::env::var("PCNN_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        if wanted && !is_enabled() {
            Tracer::install(Clock::wall()).leak();
        }
    });
    is_enabled()
}
