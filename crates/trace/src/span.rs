//! Span records and the typed counter taxonomy.

/// Maximum distinct counters one span can carry. Fixed so a
/// [`SpanRecord`] is `Copy` and recording never allocates; additions
/// beyond the cap are silently dropped (no instrumented stage comes
/// close).
pub const MAX_COUNTERS: usize = 6;

/// The typed counters spans attribute work to.
///
/// One shared taxonomy keeps exporters and conformance fixtures stable:
/// a stage never invents an ad-hoc counter name, it picks from this
/// list. Values are totals over the span (not rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Simulator ticks executed.
    Ticks,
    /// Cores stepped this tick (the active-core worklist length).
    ActiveCores,
    /// Spikes delivered to core axons.
    SpikesDelivered,
    /// Spikes routed through the fabric.
    SpikesRouted,
    /// Synaptic integration events.
    SynapticEvents,
    /// Floating-point multiply-adds, counted as 2 flops each.
    Flops,
    /// Multiply-free add/subtract selections executed by the trinary
    /// kernels (one op per nonzero weight per output column).
    Ops,
    /// Elements moved by a packing kernel (im2col/col2im).
    Elements,
    /// Video frames processed.
    Frames,
    /// Sliding windows scored.
    Windows,
    /// Bytes read from or written to disk.
    Bytes,
    /// Training epochs completed.
    Epochs,
    /// Mini-batches processed.
    Batches,
    /// Training samples seen.
    Samples,
    /// Pyramid cells served from a stream's temporal cache.
    CellsReused,
    /// Pyramid cells recomputed because their pixels changed.
    CellsRecomputed,
    /// Active tracks observed (one observation per tracked frame, so
    /// totals are conserved across worker counts).
    TracksActive,
}

impl Counter {
    /// The counter's stable snake_case name, used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Ticks => "ticks",
            Counter::ActiveCores => "active_cores",
            Counter::SpikesDelivered => "spikes_delivered",
            Counter::SpikesRouted => "spikes_routed",
            Counter::SynapticEvents => "synaptic_events",
            Counter::Flops => "flops",
            Counter::Ops => "ops",
            Counter::Elements => "elements",
            Counter::Frames => "frames",
            Counter::Windows => "windows",
            Counter::Bytes => "bytes",
            Counter::Epochs => "epochs",
            Counter::Batches => "batches",
            Counter::Samples => "samples",
            Counter::CellsReused => "cells_reused",
            Counter::CellsRecomputed => "cells_recomputed",
            Counter::TracksActive => "tracks_active",
        }
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One completed span, as recorded in a [`Trace`](crate::Trace).
///
/// `id` numbers spans per lane in *open* order (1-based); `parent` is
/// the id of the enclosing span on the same lane, or 0 for a root.
/// Spans never span threads: a span opened on one thread closes on the
/// same thread, and cross-thread work shows up as root spans on the
/// worker's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static stage name, e.g. `"truenorth.tick"`.
    pub name: &'static str,
    /// Per-lane span id in open order (1-based).
    pub id: u32,
    /// Id of the enclosing span on the same lane; 0 for roots.
    pub parent: u32,
    /// Start timestamp in clock nanoseconds.
    pub start_ns: u64,
    /// End timestamp in clock nanoseconds.
    pub end_ns: u64,
    /// Counter slots; only the first `n_counters` are meaningful.
    pub counters: [(Counter, u64); MAX_COUNTERS],
    /// Number of populated counter slots.
    pub n_counters: u8,
}

impl SpanRecord {
    /// The populated counter slots, in the order they were first added.
    pub fn counters(&self) -> &[(Counter, u64)] {
        &self.counters[..self.n_counters as usize]
    }

    /// The value of one counter, if the span carries it.
    pub fn counter(&self, which: Counter) -> Option<u64> {
        self.counters().iter().find(|(c, _)| *c == which).map(|&(_, v)| v)
    }

    /// Span duration in clock nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique() {
        let all = [
            Counter::Ticks,
            Counter::ActiveCores,
            Counter::SpikesDelivered,
            Counter::SpikesRouted,
            Counter::SynapticEvents,
            Counter::Flops,
            Counter::Ops,
            Counter::Elements,
            Counter::Frames,
            Counter::Windows,
            Counter::Bytes,
            Counter::Epochs,
            Counter::Batches,
            Counter::Samples,
            Counter::CellsReused,
            Counter::CellsRecomputed,
            Counter::TracksActive,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
