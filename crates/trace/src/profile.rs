//! Aggregate profiling: per-stage duration statistics and the shared
//! bucket-quantile estimator.

use crate::span::Counter;
use crate::trace::Trace;

/// Duration statistics for one stage (all spans sharing a name).
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// The stage's static span name.
    pub name: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Shortest span in nanoseconds.
    pub min_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
    /// Median duration in nanoseconds (exact, from sorted samples).
    pub p50_ns: u64,
    /// 99th-percentile duration in nanoseconds (exact).
    pub p99_ns: u64,
    /// Counter totals over the stage's spans, sorted by counter.
    pub counters: Vec<(Counter, u64)>,
}

/// Per-stage aggregate of a [`Trace`]: one [`StageProfile`] per
/// distinct span name, sorted by descending total duration.
///
/// Quantiles here are *exact* — computed from the sorted span
/// durations, not a histogram sketch. The serving runtime's streaming
/// histograms estimate quantiles instead via
/// [`quantile_from_buckets`], sharing the interpolation rule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// One entry per stage, sorted by descending `total_ns` (ties by
    /// name, so mock-clock reports are deterministic).
    pub stages: Vec<StageProfile>,
}

impl ProfileReport {
    /// Builds the report by aggregating `trace` per span name.
    pub fn from_trace(trace: &Trace) -> ProfileReport {
        // One bucket per stage name: durations (sorted later) + counter totals.
        type Group = (&'static str, Vec<u64>, Vec<(Counter, u64)>);
        let mut groups: Vec<Group> = Vec::new();
        for span in trace.spans() {
            let group = match groups.iter_mut().find(|(n, _, _)| *n == span.name) {
                Some(g) => g,
                None => {
                    groups.push((span.name, Vec::new(), Vec::new()));
                    groups.last_mut().expect("just pushed")
                }
            };
            group.1.push(span.duration_ns());
            for &(counter, value) in span.counters() {
                match group.2.iter_mut().find(|(c, _)| *c == counter) {
                    Some(t) => t.1 = t.1.saturating_add(value),
                    None => group.2.push((counter, value)),
                }
            }
        }
        let mut stages: Vec<StageProfile> = groups
            .into_iter()
            .map(|(name, mut durations, mut counters)| {
                durations.sort_unstable();
                counters.sort_by_key(|&(c, _)| c);
                let count = durations.len() as u64;
                StageProfile {
                    name,
                    count,
                    total_ns: durations.iter().fold(0u64, |a, &d| a.saturating_add(d)),
                    min_ns: *durations.first().expect("group is non-empty"),
                    max_ns: *durations.last().expect("group is non-empty"),
                    p50_ns: exact_quantile(&durations, 0.50),
                    p99_ns: exact_quantile(&durations, 0.99),
                    counters,
                }
            })
            .collect();
        stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        ProfileReport { stages }
    }

    /// The profile for one stage, if any span carried that name.
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders a fixed-width table, one stage per line. Durations are
    /// printed in microseconds with 3 decimals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "count", "total_us", "min_us", "max_us", "p50_us", "p99_us"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<24} {:>8} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                s.name,
                s.count,
                s.total_ns as f64 / 1_000.0,
                s.min_ns as f64 / 1_000.0,
                s.max_ns as f64 / 1_000.0,
                s.p50_ns as f64 / 1_000.0,
                s.p99_ns as f64 / 1_000.0,
            ));
        }
        out
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Exact quantile of an already-sorted sample set, by linear
/// interpolation between the two nearest order statistics (the "R-7"
/// rule spreadsheets use). `sorted` must be non-empty and ascending;
/// `q` is clamped to `[0, 1]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let q = q.clamp(0.0, 1.0);
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = q * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let a = sorted[lo] as f64;
    let b = sorted[hi] as f64;
    (a + (b - a) * frac).round() as u64
}

/// Estimates a quantile from histogram buckets by interpolating within
/// the bucket that contains the target rank.
///
/// `bounds` are the ascending upper edges of the first
/// `bounds.len()` buckets; `counts` has one extra trailing slot for
/// samples above the last bound. Bucket `i` spans
/// `(bounds[i-1], bounds[i]]` (the first starts at 0). The estimator:
///
/// * returns `None` for an empty histogram;
/// * finds the bucket holding rank `q * (total - 1)`;
/// * places the estimate a fraction `(rank - preceding + 0.5) / count`
///   of the way through that bucket, treating samples as spread evenly
///   across it (the `+0.5` centres each sample in its slot, which
///   removes the low bias a floor-to-bucket-edge rule has);
/// * saturates overflow-bucket ranks at the last bound, the only
///   honest answer for samples with no upper edge.
///
/// Shared between [`ProfileReport`]'s histogram consumers and the
/// serving runtime's latency `HistogramReport`, so both report the
/// same estimate for the same buckets.
pub fn quantile_from_buckets(bounds: &[u64], counts: &[u64], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (total - 1) as f64;
    let mut preceding = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        // Rank falls in this bucket when it is below the cumulative
        // count (ranks are 0-based: bucket holds ranks
        // [preceding, preceding + c)).
        if rank < (preceding + c) as f64 {
            if i >= bounds.len() {
                // Overflow bucket: unbounded above, saturate.
                return Some(bounds.last().copied().unwrap_or(u64::MAX));
            }
            let lo = if i == 0 { 0 } else { bounds[i - 1] };
            let hi = bounds[i];
            let frac = ((rank - preceding as f64 + 0.5) / c as f64).clamp(0.0, 1.0);
            return Some(lo + ((hi - lo) as f64 * frac).round() as u64);
        }
        preceding += c;
    }
    // All counts consumed without covering rank: only reachable through
    // float edge cases at q = 1; saturate like the overflow case.
    Some(bounds.last().copied().unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanRecord, MAX_COUNTERS};
    use crate::trace::LaneTrace;

    fn span_with_duration(name: &'static str, id: u32, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            name,
            id,
            parent: 0,
            start_ns: 0,
            end_ns: dur_ns,
            counters: [(Counter::Ticks, 0); MAX_COUNTERS],
            n_counters: 0,
        }
    }

    #[test]
    fn exact_quantiles_interpolate() {
        assert_eq!(exact_quantile(&[10], 0.5), 10);
        assert_eq!(exact_quantile(&[10, 20], 0.5), 15);
        assert_eq!(exact_quantile(&[10, 20, 30], 0.5), 20);
        assert_eq!(exact_quantile(&[0, 100], 0.99), 99);
        assert_eq!(exact_quantile(&[1, 2, 3, 4], 0.0), 1);
        assert_eq!(exact_quantile(&[1, 2, 3, 4], 1.0), 4);
    }

    #[test]
    fn report_aggregates_and_sorts_by_total() {
        let trace = Trace {
            lanes: vec![LaneTrace {
                lane: 0,
                spans: vec![
                    span_with_duration("small", 1, 10),
                    span_with_duration("big", 2, 1_000),
                    span_with_duration("small", 3, 30),
                ],
            }],
            dropped: 0,
        };
        let report = trace.profile();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "big");
        let small = report.stage("small").expect("stage present");
        assert_eq!(small.count, 2);
        assert_eq!(small.total_ns, 40);
        assert_eq!(small.min_ns, 10);
        assert_eq!(small.max_ns, 30);
        assert_eq!(small.p50_ns, 20);
        assert!(report.render().contains("big"));
    }

    #[test]
    fn bucket_quantile_empty_is_none() {
        assert_eq!(quantile_from_buckets(&[10, 20], &[0, 0, 0], 0.5), None);
    }

    #[test]
    fn bucket_quantile_single_sample_centres_in_bucket() {
        // One sample in (10, 20]: rank 0, frac (0 - 0 + 0.5)/1 = 0.5.
        assert_eq!(quantile_from_buckets(&[10, 20], &[0, 1, 0], 0.5), Some(15));
        // Same sample at every quantile — a single observation gives a
        // single estimate.
        assert_eq!(quantile_from_buckets(&[10, 20], &[0, 1, 0], 0.0), Some(15));
        assert_eq!(quantile_from_buckets(&[10, 20], &[0, 1, 0], 0.99), Some(15));
    }

    #[test]
    fn bucket_quantile_all_overflow_saturates() {
        assert_eq!(quantile_from_buckets(&[10, 20], &[0, 0, 5], 0.5), Some(20));
        assert_eq!(quantile_from_buckets(&[10, 20], &[0, 0, 5], 0.99), Some(20));
    }

    #[test]
    fn bucket_quantile_is_unbiased_for_uniform_fill() {
        // 10 samples spread evenly through (0, 100]: the median should
        // land mid-range, not at a bucket floor.
        let bounds = [100];
        let counts = [10, 0];
        let p50 = quantile_from_buckets(&bounds, &counts, 0.5).unwrap();
        assert_eq!(p50, 50, "centred estimator: rank 4.5 of 10 → 50");
    }

    #[test]
    fn bucket_quantile_walks_to_the_right_bucket() {
        // Buckets (0,10], (10,20], (20,30]: 2 + 5 + 3 samples.
        let bounds = [10, 20, 30];
        let counts = [2, 5, 3, 0];
        // rank(0.5) = 4.5 → second bucket, frac (4.5-2+0.5)/5 = 0.6.
        assert_eq!(quantile_from_buckets(&bounds, &counts, 0.5), Some(16));
        // rank(1.0) = 9 → third bucket, frac (9-7+0.5)/3 = 0.833…
        assert_eq!(quantile_from_buckets(&bounds, &counts, 1.0), Some(28));
    }
}
