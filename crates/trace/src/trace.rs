//! Drained traces: per-lane span collections and aggregate queries.

use crate::profile::ProfileReport;
use crate::span::{Counter, SpanRecord};

/// All spans one thread (lane) completed, sorted by open order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneTrace {
    /// Registration index of the lane, stable within one tracer.
    pub lane: u32,
    /// The lane's spans, sorted by [`SpanRecord::id`] (open order).
    pub spans: Vec<SpanRecord>,
}

/// Everything a tracer collected: one [`LaneTrace`] per recording
/// thread, plus a count of spans dropped at the retention cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Per-thread lanes, in lane-registration order. Lanes that never
    /// completed a span are omitted.
    pub lanes: Vec<LaneTrace>,
    /// Spans discarded because a lane hit its retention cap; 0 in any
    /// healthy run.
    pub dropped: u64,
}

impl Trace {
    /// Total completed spans across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// Iterates every span across all lanes, lane order first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.lanes.iter().flat_map(|l| l.spans.iter())
    }

    /// Sum of one counter over every span named `name`.
    pub fn counter_total(&self, name: &str, which: Counter) -> u64 {
        self.spans()
            .filter(|s| s.name == name)
            .filter_map(|s| s.counter(which))
            .fold(0, u64::saturating_add)
    }

    /// Per-counter totals over every span named `name`, in first-seen
    /// counter order.
    pub fn counter_totals(&self, name: &str) -> Vec<(Counter, u64)> {
        let mut totals: Vec<(Counter, u64)> = Vec::new();
        for span in self.spans().filter(|s| s.name == name) {
            for &(counter, value) in span.counters() {
                match totals.iter_mut().find(|(c, _)| *c == counter) {
                    Some(t) => t.1 = t.1.saturating_add(value),
                    None => totals.push((counter, value)),
                }
            }
        }
        totals
    }

    /// Aggregates into a per-stage [`ProfileReport`].
    pub fn profile(&self) -> ProfileReport {
        ProfileReport::from_trace(self)
    }

    /// Exports in Chrome `trace_event` JSON format; see
    /// [`chrome`](crate::chrome).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }

    /// Renders the full span forest, one line per span, children
    /// indented under parents:
    ///
    /// ```text
    /// lane 0
    ///   runtime.batch  frames=2
    ///     runtime.pyramid
    /// ```
    ///
    /// Durations are deliberately omitted so the output is stable under
    /// a mock clock across machines.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for lane in &self.lanes {
            out.push_str(&format!("lane {}\n", lane.lane));
            // Spans are sorted by id = open order, and a parent always
            // opens before its children, so a single pass with a depth
            // stack reconstructs the tree.
            let mut stack: Vec<u32> = Vec::new();
            for span in &lane.spans {
                while let Some(&top) = stack.last() {
                    if top == span.parent {
                        break;
                    }
                    stack.pop();
                }
                let depth = stack.len() + 1;
                out.push_str(&"  ".repeat(depth));
                out.push_str(span.name);
                for &(counter, value) in span.counters() {
                    out.push_str(&format!("  {counter}={value}"));
                }
                out.push('\n');
                stack.push(span.id);
            }
        }
        out
    }

    /// Renders an aggregated summary keyed by *path* (ancestor names
    /// joined with `/`), one line per distinct path in first-occurrence
    /// order, with span count and counter totals:
    ///
    /// ```text
    /// runtime.batch  count=2  frames=2
    /// runtime.batch/runtime.pyramid  count=2
    /// ```
    ///
    /// This is the golden-fixture format: it pins stage names, nesting
    /// and counter values while staying compact and clock-independent.
    pub fn render_summary(&self) -> String {
        struct Row {
            path: String,
            count: u64,
            counters: Vec<(Counter, u64)>,
        }
        let mut rows: Vec<Row> = Vec::new();
        for lane in &self.lanes {
            // (id, path index) ancestry stack, same walk as render_tree.
            let mut stack: Vec<(u32, String)> = Vec::new();
            for span in &lane.spans {
                while let Some((top, _)) = stack.last() {
                    if *top == span.parent {
                        break;
                    }
                    stack.pop();
                }
                let path = match stack.last() {
                    Some((_, parent_path)) => format!("{parent_path}/{}", span.name),
                    None => span.name.to_string(),
                };
                let row = match rows.iter_mut().find(|r| r.path == path) {
                    Some(row) => row,
                    None => {
                        rows.push(Row { path: path.clone(), count: 0, counters: Vec::new() });
                        rows.last_mut().expect("just pushed")
                    }
                };
                row.count += 1;
                for &(counter, value) in span.counters() {
                    match row.counters.iter_mut().find(|(c, _)| *c == counter) {
                        Some(t) => t.1 = t.1.saturating_add(value),
                        None => row.counters.push((counter, value)),
                    }
                }
                stack.push((span.id, path));
            }
        }
        let mut out = String::new();
        for row in &rows {
            out.push_str(&format!("{}  count={}", row.path, row.count));
            let mut counters = row.counters.clone();
            counters.sort_by_key(|&(c, _)| c);
            for (counter, value) in counters {
                out.push_str(&format!("  {counter}={value}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::MAX_COUNTERS;

    fn rec(name: &'static str, id: u32, parent: u32, counters: &[(Counter, u64)]) -> SpanRecord {
        let mut slots = [(Counter::Ticks, 0); MAX_COUNTERS];
        slots[..counters.len()].copy_from_slice(counters);
        SpanRecord {
            name,
            id,
            parent,
            start_ns: id as u64 * 1_000,
            end_ns: id as u64 * 1_000 + 500,
            counters: slots,
            n_counters: counters.len() as u8,
        }
    }

    fn sample() -> Trace {
        Trace {
            lanes: vec![LaneTrace {
                lane: 0,
                spans: vec![
                    rec("batch", 1, 0, &[(Counter::Frames, 2)]),
                    rec("stage", 2, 1, &[(Counter::Windows, 9)]),
                    rec("stage", 3, 1, &[(Counter::Windows, 1)]),
                    rec("batch", 4, 0, &[(Counter::Frames, 1)]),
                    rec("stage", 5, 4, &[(Counter::Windows, 5)]),
                ],
            }],
            dropped: 0,
        }
    }

    #[test]
    fn counter_totals_aggregate_by_name() {
        let t = sample();
        assert_eq!(t.counter_total("stage", Counter::Windows), 15);
        assert_eq!(t.counter_total("batch", Counter::Frames), 3);
        assert_eq!(t.counter_total("stage", Counter::Frames), 0);
        assert_eq!(t.counter_totals("batch"), vec![(Counter::Frames, 3)]);
    }

    #[test]
    fn render_tree_nests_children() {
        let t = sample();
        let tree = t.render_tree();
        let expected = "lane 0\n  batch  frames=2\n    stage  windows=9\n    stage  windows=1\n  batch  frames=1\n    stage  windows=5\n";
        assert_eq!(tree, expected);
    }

    #[test]
    fn render_summary_groups_by_path() {
        let t = sample();
        let summary = t.render_summary();
        let expected = "batch  count=2  frames=3\nbatch/stage  count=3  windows=15\n";
        assert_eq!(summary, expected);
    }
}
