//! The global tracer: installation, per-thread lanes, RAII guards.
//!
//! Recording is organized around *lanes*: each thread that opens a span
//! gets a private buffer (no locks, no sharing) plus a registered sink
//! it flushes into in amortized batches — at a size threshold, and
//! unconditionally when the thread exits. [`Tracer::drain`] collects
//! every sink. The disabled path is a single relaxed atomic load.

use crate::clock::Clock;
use crate::span::{Counter, SpanRecord, MAX_COUNTERS};
use crate::trace::{LaneTrace, Trace};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Completed spans buffered per thread before a flush to the sink.
const FLUSH_THRESHOLD: usize = 1024;

/// Per-lane cap on retained spans; beyond it new spans are counted in
/// [`Trace::dropped`] instead of retained, so a forgotten tracer on a
/// long run degrades to a counter instead of unbounded memory.
const MAX_SPANS_PER_LANE: usize = 4_000_000;

/// Fast global gate: `span()` returns an inert guard without touching
/// anything else when this is false.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall so thread-local lanes can detect
/// that their cached tracer is stale.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// The installed tracer's shared state.
static GLOBAL: Mutex<Option<Arc<Shared>>> = Mutex::new(None);

/// State shared between the installing thread, all recording lanes and
/// the drain side.
pub(crate) struct Shared {
    clock: Clock,
    /// The generation this tracer was installed under; stale lanes and
    /// guards compare against [`GENERATION`].
    generation: u64,
    /// One sink per lane, in lane-index order.
    sinks: Mutex<Vec<Arc<Mutex<Vec<SpanRecord>>>>>,
    dropped: AtomicU64,
}

/// A span currently open on this thread.
struct OpenSpan {
    name: &'static str,
    id: u32,
    parent: u32,
    start_ns: u64,
    counters: [(Counter, u64); MAX_COUNTERS],
    n_counters: u8,
}

/// This thread's recording state, bound to one tracer generation.
struct LocalLane {
    generation: u64,
    shared: Arc<Shared>,
    sink: Arc<Mutex<Vec<SpanRecord>>>,
    buf: Vec<SpanRecord>,
    stack: Vec<OpenSpan>,
    next_id: u32,
}

impl LocalLane {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        let room = MAX_SPANS_PER_LANE.saturating_sub(sink.len());
        if room < self.buf.len() {
            let over = (self.buf.len() - room) as u64;
            self.shared.dropped.fetch_add(over, Ordering::Relaxed);
            self.buf.truncate(room);
        }
        sink.append(&mut self.buf);
    }
}

impl Drop for LocalLane {
    fn drop(&mut self) {
        // A worker thread exiting mid-span would leave the stack
        // populated; those spans were never closed and are discarded,
        // but everything completed is preserved.
        self.flush();
    }
}

thread_local! {
    static LANE: RefCell<Option<LocalLane>> = const { RefCell::new(None) };
}

/// Whether a tracer is currently installed and recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a span on the installed tracer. With no tracer installed this
/// is one relaxed atomic load and the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard::inert();
    }
    open_span(name)
}

/// The slow path of [`span`]: binds this thread's lane to the current
/// tracer if needed and pushes an open span.
fn open_span(name: &'static str) -> SpanGuard {
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let generation = GENERATION.load(Ordering::Acquire);
        let rebind = match slot.as_ref() {
            Some(lane) => lane.generation != generation,
            None => true,
        };
        if rebind {
            // Preserve whatever the stale lane had completed (its sink
            // may still be drained by the old tracer's handle), then
            // bind to the freshly installed tracer.
            if let Some(mut old) = slot.take() {
                old.stack.clear();
                old.flush();
            }
            let shared = match GLOBAL.lock().unwrap_or_else(|p| p.into_inner()).clone() {
                // Install raced with uninstall: nothing to record into.
                None => return SpanGuard::inert(),
                Some(shared) => shared,
            };
            if shared.generation != generation {
                return SpanGuard::inert();
            }
            let sink = Arc::new(Mutex::new(Vec::new()));
            shared.sinks.lock().unwrap_or_else(|p| p.into_inner()).push(Arc::clone(&sink));
            *slot = Some(LocalLane {
                generation,
                shared,
                sink,
                buf: Vec::new(),
                stack: Vec::new(),
                next_id: 1,
            });
        }
        let lane = slot.as_mut().expect("lane bound above");
        let id = lane.next_id;
        lane.next_id += 1;
        let parent = lane.stack.last().map_or(0, |s| s.id);
        let start_ns = lane.shared.clock.now_ns();
        lane.stack.push(OpenSpan {
            name,
            id,
            parent,
            start_ns,
            counters: [(Counter::Ticks, 0); MAX_COUNTERS],
            n_counters: 0,
        });
        SpanGuard { depth: lane.stack.len() as u32, generation, _not_send: PhantomData }
    })
}

/// An RAII guard closing its span on drop.
///
/// Guards follow stack discipline per thread (drop order is the reverse
/// of open order); a guard dropped out of order closes every span
/// opened after it with the same end timestamp. Guards are `!Send` —
/// a span opens and closes on one thread.
#[must_use = "a span lasts until its guard is dropped"]
pub struct SpanGuard {
    /// 1-based stack depth of the span this guard closes; 0 = inert.
    depth: u32,
    generation: u64,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    #[inline]
    fn inert() -> Self {
        SpanGuard { depth: 0, generation: 0, _not_send: PhantomData }
    }

    /// Whether this guard records anything. Use to skip counter
    /// computations that are not free:
    /// `if g.is_recording() { g.add(Counter::Flops, 2 * m * n * k) }`.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.depth != 0
    }

    /// Adds `value` to `counter` on this span (saturating). A no-op on
    /// an inert guard; silently dropped beyond [`MAX_COUNTERS`]
    /// distinct counters.
    #[inline]
    pub fn add(&self, counter: Counter, value: u64) {
        if self.depth == 0 {
            return;
        }
        LANE.with(|slot| {
            let mut slot = slot.borrow_mut();
            let Some(lane) = slot.as_mut() else { return };
            if lane.generation != self.generation {
                return;
            }
            let Some(open) = lane.stack.get_mut(self.depth as usize - 1) else { return };
            let n = open.n_counters as usize;
            if let Some(c) = open.counters[..n].iter_mut().find(|(c, _)| *c == counter) {
                c.1 = c.1.saturating_add(value);
            } else if n < MAX_COUNTERS {
                open.counters[n] = (counter, value);
                open.n_counters += 1;
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == 0 {
            return;
        }
        LANE.with(|slot| {
            let mut slot = slot.borrow_mut();
            let Some(lane) = slot.as_mut() else { return };
            if lane.generation != self.generation {
                return;
            }
            let end_ns = lane.shared.clock.now_ns();
            // Close this span and (defensively) any child left open.
            while lane.stack.len() >= self.depth as usize {
                let open = lane.stack.pop().expect("stack at least `depth` deep");
                lane.buf.push(SpanRecord {
                    name: open.name,
                    id: open.id,
                    parent: open.parent,
                    start_ns: open.start_ns,
                    end_ns,
                    counters: open.counters,
                    n_counters: open.n_counters,
                });
            }
            // Flush whenever the stack empties: a worker closure's
            // completed spans must be visible the moment the closure
            // returns, because `thread::scope` joins before TLS
            // destructors run. The threshold flush bounds TLS memory
            // while a long-lived root span (a whole training run) is
            // still open.
            if lane.stack.is_empty() || lane.buf.len() >= FLUSH_THRESHOLD {
                lane.flush();
            }
        });
    }
}

/// A handle on one tracer. [`Tracer::install`] makes it the process
/// global that [`span`] records into; the handle then drains collected
/// spans. Dropping the handle does *not* stop tracing — call
/// [`Tracer::uninstall`].
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.shared.is_some()).finish()
    }
}

impl Tracer {
    /// Installs a fresh tracer reading time from `clock` and returns
    /// its handle. Replaces (and implicitly uninstalls) any previously
    /// installed tracer; spans its lanes had already completed remain
    /// drainable through the old handle.
    pub fn install(clock: Clock) -> Tracer {
        let mut global = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
        let generation = GENERATION.load(Ordering::Acquire) + 1;
        let shared = Arc::new(Shared {
            clock,
            generation,
            sinks: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        *global = Some(Arc::clone(&shared));
        GENERATION.store(generation, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
        Tracer { shared: Some(shared) }
    }

    /// A handle that never records: its [`Tracer::span`] returns an
    /// inert guard and its [`Tracer::drain`] returns an empty trace.
    /// Exists so code can hold "a tracer" unconditionally; the
    /// disabled-tracing conformance test pins that this allocates
    /// nothing per span.
    pub fn disabled() -> Tracer {
        Tracer { shared: None }
    }

    /// A handle on the currently installed tracer, or a disabled handle
    /// when none is installed. Lets code that did not do the
    /// installation (e.g. an example behind [`init_from_env`]) drain.
    ///
    /// [`init_from_env`]: crate::init_from_env
    pub fn global() -> Tracer {
        Tracer { shared: GLOBAL.lock().unwrap_or_else(|p| p.into_inner()).clone() }
    }

    /// Stops recording globally. Already-collected spans stay drainable
    /// through existing handles.
    pub fn uninstall() {
        let mut global = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::AcqRel);
        *global = None;
    }

    /// Consumes the handle, leaving the tracer installed for the rest
    /// of the process. Used by [`init_from_env`](crate::init_from_env),
    /// where nobody holds a handle and draining happens through
    /// [`Tracer::global`]. (Dropping a handle never stops tracing; this
    /// method just states the intent.)
    pub fn leak(self) {}

    /// Whether this handle points at a live tracer.
    pub fn is_recording(&self) -> bool {
        match &self.shared {
            Some(shared) => GENERATION.load(Ordering::Acquire) == shared.generation,
            None => false,
        }
    }

    /// Opens a span on this tracer — inert for a [`disabled`] handle,
    /// equivalent to the free [`span`] function while this tracer is
    /// the installed one, inert after it has been replaced.
    ///
    /// [`disabled`]: Tracer::disabled
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if self.is_recording() {
            span(name)
        } else {
            SpanGuard::inert()
        }
    }

    /// Takes every completed span collected so far, leaving the sinks
    /// empty (the tracer keeps recording). Spans still open, and spans
    /// buffered on *other* live threads that have not flushed yet, are
    /// not included — drain after joining worker threads (the runtime's
    /// scoped pools satisfy this by construction).
    pub fn drain(&self) -> Trace {
        self.collect(true)
    }

    /// Like [`Tracer::drain`] but leaves the collected spans in place,
    /// so periodic reporting does not steal the final trace.
    pub fn snapshot(&self) -> Trace {
        self.collect(false)
    }

    fn collect(&self, take: bool) -> Trace {
        let Some(shared) = &self.shared else {
            return Trace { lanes: Vec::new(), dropped: 0 };
        };
        // Make the calling thread's completed-but-buffered spans
        // visible (worker lanes flush when their threads exit).
        LANE.with(|slot| {
            if let Some(lane) = slot.borrow_mut().as_mut() {
                if Arc::ptr_eq(&lane.shared, shared) {
                    lane.flush();
                }
            }
        });
        let sinks = shared.sinks.lock().unwrap_or_else(|p| p.into_inner());
        let mut lanes = Vec::new();
        for (index, sink) in sinks.iter().enumerate() {
            let mut guard = sink.lock().unwrap_or_else(|p| p.into_inner());
            let spans = if take { std::mem::take(&mut *guard) } else { guard.clone() };
            drop(guard);
            if spans.is_empty() {
                continue;
            }
            let mut lane = LaneTrace { lane: index as u32, spans };
            lane.spans.sort_by_key(|s| s.id);
            lanes.push(lane);
        }
        Trace { lanes, dropped: shared.dropped.load(Ordering::Relaxed) }
    }
}

/// Aggregates the installed tracer's spans collected so far into a
/// [`ProfileReport`](crate::ProfileReport) without consuming them, or
/// `None` when tracing is off. This is what the serving runtime calls
/// to surface per-stage timings in its `RuntimeReport`.
pub fn profile_snapshot() -> Option<crate::ProfileReport> {
    let tracer = Tracer::global();
    if !tracer.is_recording() {
        return None;
    }
    Some(tracer.snapshot().profile())
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that install the global tracer.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_carry_counters() {
        let _guard = test_lock::hold();
        let tracer = Tracer::install(Clock::mock());
        {
            let a = span("a");
            {
                let b = span("b");
                b.add(Counter::Frames, 3);
                b.add(Counter::Frames, 2);
                b.add(Counter::Bytes, 7);
            }
            a.add(Counter::Ticks, 1);
        }
        let trace = tracer.drain();
        Tracer::uninstall();
        assert_eq!(trace.span_count(), 2);
        let lane = &trace.lanes[0];
        // Ids in open order: a=1, b=2; b closed first but sorts after a.
        assert_eq!(lane.spans[0].name, "a");
        assert_eq!(lane.spans[0].parent, 0);
        assert_eq!(lane.spans[1].name, "b");
        assert_eq!(lane.spans[1].parent, 1);
        assert_eq!(lane.spans[1].counter(Counter::Frames), Some(5));
        assert_eq!(lane.spans[1].counter(Counter::Bytes), Some(7));
        assert_eq!(lane.spans[0].counter(Counter::Ticks), Some(1));
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _guard = test_lock::hold();
        Tracer::uninstall();
        let g = span("nothing");
        assert!(!g.is_recording());
        g.add(Counter::Frames, 1);
        drop(g);
        let t = Tracer::disabled();
        let g = t.span("also.nothing");
        assert!(!g.is_recording());
        drop(g);
        assert_eq!(t.drain().span_count(), 0);
    }

    #[test]
    fn worker_thread_lanes_flush_on_exit() {
        let _guard = test_lock::hold();
        let tracer = Tracer::install(Clock::mock());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let g = span("worker");
                    g.add(Counter::Windows, 10);
                });
            }
        });
        let trace = tracer.drain();
        Tracer::uninstall();
        assert_eq!(trace.span_count(), 3);
        assert_eq!(trace.counter_total("worker", Counter::Windows), 30);
    }

    #[test]
    fn reinstall_starts_clean() {
        let _guard = test_lock::hold();
        let first = Tracer::install(Clock::mock());
        drop(span("old"));
        let stale = first.drain();
        assert_eq!(stale.span_count(), 1);
        let second = Tracer::install(Clock::mock());
        drop(span("new"));
        let trace = second.drain();
        Tracer::uninstall();
        assert_eq!(trace.span_count(), 1);
        assert_eq!(trace.lanes[0].spans[0].name, "new");
        // Timestamps restart with the fresh mock clock.
        assert_eq!(trace.lanes[0].spans[0].start_ns, 0);
    }

    #[test]
    fn out_of_order_drop_closes_children() {
        let _guard = test_lock::hold();
        let tracer = Tracer::install(Clock::mock());
        let outer = span("outer");
        let inner = span("inner");
        drop(outer); // closes inner too
        drop(inner); // harmless: already closed
        let trace = tracer.drain();
        Tracer::uninstall();
        assert_eq!(trace.span_count(), 2);
        let ends: Vec<u64> = trace.lanes[0].spans.iter().map(|s| s.end_ns).collect();
        assert_eq!(ends[0], ends[1], "children share the closing timestamp");
    }
}
