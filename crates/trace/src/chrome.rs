//! Chrome `trace_event` JSON export.
//!
//! Emits the [trace event format] consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one `"X"` (complete) event per
//! span with microsecond timestamps, the lane index as `tid`, and the
//! span's counters under `args`. Written by hand so the trace crate
//! stays dependency-free; a conformance test parses the output with
//! `serde_json` to pin validity.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::SpanRecord;
use crate::trace::Trace;

/// Serializes `trace` as a Chrome `trace_event` JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.span_count() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for lane in &trace.lanes {
        for span in &lane.spans {
            if !first {
                out.push(',');
            }
            first = false;
            push_event(&mut out, lane.lane, span);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    if trace.dropped > 0 {
        out.push_str(&format!(",\"pcnnDroppedSpans\":{}", trace.dropped));
    }
    out.push_str("}\n");
    out
}

fn push_event(out: &mut String, lane: u32, span: &SpanRecord) {
    out.push_str("{\"name\":\"");
    push_escaped(out, span.name);
    // Timestamps and durations are microseconds (floating) in this
    // format; spans record nanoseconds.
    out.push_str(&format!(
        "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
        lane,
        format_us(span.start_ns),
        format_us(span.duration_ns()),
    ));
    if span.n_counters > 0 {
        out.push_str(",\"args\":{");
        for (i, &(counter, value)) in span.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{counter}\":{value}"));
        }
        out.push('}');
    }
    out.push('}');
}

/// Formats nanoseconds as decimal microseconds without float rounding:
/// `1_234_567 ns` → `"1234.567"`, `2_000 ns` → `"2"`.
fn format_us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

/// Escapes a span name for embedding in a JSON string. Stage names are
/// static identifiers like `"truenorth.tick"`, so this is normally a
/// straight copy, but correctness should not depend on that.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Counter, MAX_COUNTERS};
    use crate::trace::LaneTrace;

    #[test]
    fn format_us_is_exact() {
        assert_eq!(format_us(0), "0");
        assert_eq!(format_us(2_000), "2");
        assert_eq!(format_us(1_234_567), "1234.567");
        assert_eq!(format_us(1_500), "1.5");
        assert_eq!(format_us(999), "0.999");
    }

    #[test]
    fn escapes_hostile_names() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn output_parses_as_json() {
        let mut counters = [(Counter::Ticks, 0); MAX_COUNTERS];
        counters[0] = (Counter::Flops, 1_000);
        let trace = Trace {
            lanes: vec![LaneTrace {
                lane: 2,
                spans: vec![SpanRecord {
                    name: "kernels.gemm",
                    id: 1,
                    parent: 0,
                    start_ns: 1_000,
                    end_ns: 4_500,
                    counters,
                    n_counters: 1,
                }],
            }],
            dropped: 0,
        };
        let json = to_chrome_json(&trace);
        let doc: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.get("name"), Some(&serde::Value::Str("kernels.gemm".into())));
        assert_eq!(ev.get("ph"), Some(&serde::Value::Str("X".into())));
        assert_eq!(ev.get("tid"), Some(&serde::Value::UInt(2)));
        assert_eq!(ev.get("ts"), Some(&serde::Value::UInt(1)));
        assert_eq!(ev.get("dur"), Some(&serde::Value::Float(3.5)));
        let flops = ev.get("args").and_then(|a| a.get("flops"));
        assert_eq!(flops, Some(&serde::Value::UInt(1_000)));
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Trace { lanes: Vec::new(), dropped: 0 };
        let doc: serde::Value = serde_json::from_str(&to_chrome_json(&trace)).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array());
        assert_eq!(events.map(<[serde::Value]>::len), Some(0));
    }
}
