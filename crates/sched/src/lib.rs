//! Deterministic work scheduling over a fixed pool of scoped threads.
//!
//! Independent work items (frames, pyramid levels, window-row chunks,
//! simulator core partitions) are executed by [`parallel_map`]: a pure
//! function over item indices runs on `workers` threads and returns
//! results **in index order**, so callers that concatenate results
//! reproduce the serial traversal exactly — parallelism never reorders
//! output. Both the detection-serving runtime and the TrueNorth
//! simulator's deterministic parallel tick build on this primitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A panic caught inside one work item of [`try_parallel_map`]. The
/// panic is isolated to its item: every other item still completes and
/// returns its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The item index whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the common case);
    /// a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Applies `f` to every index in `0..n` using `workers` scoped threads
/// and returns the results in index order.
///
/// Work is distributed dynamically: each worker claims the next
/// unclaimed index from a shared counter, so uneven item costs (small
/// pyramid levels vs. large ones) still balance. With `workers <= 1`
/// the map runs inline on the caller's thread; results are identical
/// either way because ordering is restored by index before returning.
///
/// # Panics
///
/// Re-raises the first (lowest-index) panic from `f`. Use
/// [`try_parallel_map`] to isolate panics per item instead.
pub fn parallel_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_parallel_map(workers, n, f)
        .into_iter()
        .map(|r| match r {
            Ok(value) => value,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

/// Like [`parallel_map`], but catches panics per work item: item `i`'s
/// slot holds `Err(WorkerPanic)` when `f(i)` panicked, and every other
/// item still completes normally. The worker thread that caught the
/// panic keeps claiming further items, so one poisoned input cannot
/// take a thread (or the whole batch) down with it.
pub fn try_parallel_map<T, F>(workers: usize, n: usize, f: F) -> Vec<Result<T, WorkerPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = |idx: usize| {
        catch_unwind(AssertUnwindSafe(|| f(idx)))
            .map_err(|payload| WorkerPanic { index: idx, message: panic_message(&*payload) })
    };
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 || n == 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let threads = workers.min(n);
    let mut slots: Vec<Option<Result<T, WorkerPanic>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, Result<T, WorkerPanic>)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            return done;
                        }
                        done.push((idx, run(idx)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (idx, value) in handle.join().expect("worker threads never panic: items are caught")
            {
                slots[idx] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every index computed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_serial_for_any_worker_count() {
        let f = |i: usize| (i * 31 + 7) % 101;
        let serial: Vec<_> = (0..57).map(f).collect();
        for workers in [1, 2, 3, 4, 8, 64] {
            assert_eq!(parallel_map(workers, 57, f), serial, "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        assert_eq!(parallel_map::<usize, _>(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn try_parallel_map_isolates_panics_to_their_item() {
        for workers in [1, 2, 4] {
            let results = try_parallel_map(workers, 9, |i| {
                assert!(i != 3 && i != 7, "chaos at {i}");
                i * 2
            });
            for (i, r) in results.iter().enumerate() {
                match (i, r) {
                    (3 | 7, Err(p)) => {
                        assert_eq!(p.index, i);
                        assert!(p.message.contains("chaos"), "{p}");
                    }
                    (_, Ok(v)) => assert_eq!(*v, i * 2),
                    (i, r) => panic!("item {i} unexpectedly {r:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_map_reraises_the_first_panic() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(2, 4, |i| {
                assert!(i != 2, "boom at {i}");
                i
            })
        });
        let err = caught.unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("work item 2"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}
