//! The compiled, runtime form of a [`FaultPlan`].
//!
//! A simulator attaches an [`ActiveFaults`] (built once per plan with
//! [`ActiveFaults::compile`]) and consults it from its tick loop: per-core
//! lookup tables answer the stuck-at and dead-core questions in O(log n),
//! and a dedicated PRNG — seeded from the plan, independent of the
//! system's own generator — decides the stochastic fates (drop,
//! duplication, jitter) in a fixed draw order so every `(seed, plan)`
//! pair replays bit for bit.

use crate::plan::{FaultError, FaultPlan, StuckAt};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt folded into the plan seed for the drift-assignment PRNG so drift
/// draws never overlap the routing-fate stream.
const DRIFT_SALT: u64 = 0xD21F_7A11;

/// Cumulative counters of injected fault activity, for reports and
/// degraded-mode telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Spike deliveries discarded at a dead core or stuck-silent axon.
    pub deliveries_suppressed: u64,
    /// Routed spikes lost in the fabric.
    pub spikes_dropped: u64,
    /// Routed spikes delivered twice.
    pub spikes_duplicated: u64,
    /// Routed spikes that picked up extra delay.
    pub spikes_jittered: u64,
    /// Neuron firings swallowed by stuck-silent neurons.
    pub firings_suppressed: u64,
    /// Spikes emitted by stuck-active neurons beyond their natural
    /// firings.
    pub firings_forced: u64,
    /// Neurons whose threshold the plan drifted (static, set at compile).
    pub drifted_neurons: u64,
}

impl FaultStats {
    /// Total anomalous events (excluding the static drift count).
    pub fn total_events(&self) -> u64 {
        self.deliveries_suppressed
            + self.spikes_dropped
            + self.spikes_duplicated
            + self.spikes_jittered
            + self.firings_suppressed
            + self.firings_forced
    }
}

/// One neuron's compiled threshold drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftEntry {
    /// Core index.
    pub core: u32,
    /// Neuron index within the core.
    pub neuron: u16,
    /// Signed threshold shift.
    pub delta: i32,
}

/// Per-core stuck-at tables (only allocated for faulted cores).
#[derive(Debug, Clone, Default)]
struct CoreFaults {
    dead: bool,
    /// Sorted axon indices whose deliveries are discarded.
    silent_axons: Vec<u16>,
    /// Sorted neuron indices whose firings never leave the core.
    silent_neurons: Vec<u16>,
    /// Sorted neuron indices that fire on every tick.
    active_neurons: Vec<u16>,
}

/// What the fabric does with one routed spike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteFate {
    /// Deliveries to make: 0 (dropped), 1 (normal) or 2 (duplicated).
    pub copies: u8,
    /// Extra delay ticks per copy.
    pub extra: [u8; 2],
}

impl RouteFate {
    /// The healthy fate: one on-time delivery.
    pub const HEALTHY: RouteFate = RouteFate { copies: 1, extra: [0, 0] };
}

/// A [`FaultPlan`] compiled against a concrete system shape, holding the
/// fault PRNG and activity counters.
#[derive(Debug, Clone)]
pub struct ActiveFaults {
    plan: FaultPlan,
    per_core: Vec<Option<Box<CoreFaults>>>,
    /// `(core, axon)` pairs that spike every tick.
    active_axons: Vec<(u32, u16)>,
    /// Cores that must be stepped every tick (stuck-active elements),
    /// sorted and deduplicated.
    always_live: Vec<u32>,
    drift: Vec<DriftEntry>,
    rng: SmallRng,
    stats: FaultStats,
}

impl ActiveFaults {
    /// Compiles `plan` for a system of `core_count` cores with
    /// `axons_per_core` axons and `neurons_per_core` neurons each.
    ///
    /// Compilation is deterministic: the drift assignment is a pure
    /// function of the plan and the system shape.
    ///
    /// # Errors
    ///
    /// [`FaultError`] if the plan fails [`FaultPlan::validate`].
    pub fn compile(
        plan: &FaultPlan,
        core_count: usize,
        axons_per_core: usize,
        neurons_per_core: usize,
    ) -> Result<Self, FaultError> {
        plan.validate(core_count, axons_per_core, neurons_per_core)?;

        let mut per_core: Vec<Option<Box<CoreFaults>>> = vec![None; core_count];
        fn entry(per_core: &mut [Option<Box<CoreFaults>>], core: u32) -> &mut CoreFaults {
            per_core[core as usize].get_or_insert_with(Box::default)
        }
        for &core in &plan.dead_cores {
            entry(&mut per_core, core).dead = true;
        }
        let mut active_axons = Vec::new();
        let mut always_live = Vec::new();
        for a in &plan.stuck_axons {
            match a.stuck {
                StuckAt::Silent => entry(&mut per_core, a.core).silent_axons.push(a.axon),
                StuckAt::Active => {
                    active_axons.push((a.core, a.axon));
                    always_live.push(a.core);
                }
            }
        }
        for n in &plan.stuck_neurons {
            match n.stuck {
                StuckAt::Silent => entry(&mut per_core, n.core).silent_neurons.push(n.neuron),
                StuckAt::Active => {
                    entry(&mut per_core, n.core).active_neurons.push(n.neuron);
                    always_live.push(n.core);
                }
            }
        }
        for cf in per_core.iter_mut().flatten() {
            cf.silent_axons.sort_unstable();
            cf.silent_axons.dedup();
            cf.silent_neurons.sort_unstable();
            cf.silent_neurons.dedup();
            cf.active_neurons.sort_unstable();
            cf.active_neurons.dedup();
        }
        // Dead cores never step, so they need no per-tick wake-ups.
        always_live.sort_unstable();
        always_live.dedup();
        always_live.retain(|&c| !per_core[c as usize].as_ref().is_some_and(|cf| cf.dead));
        active_axons.sort_unstable();
        active_axons.dedup();

        let mut drift = Vec::new();
        if plan.drift_rate > 0.0 && plan.drift_magnitude > 0 {
            let mut rng = SmallRng::seed_from_u64(plan.seed ^ DRIFT_SALT);
            for core in 0..core_count as u32 {
                for neuron in 0..neurons_per_core as u16 {
                    if rng.random::<f32>() < plan.drift_rate {
                        let magnitude = rng.random_range(1..=plan.drift_magnitude);
                        let delta = if rng.random_bool(0.5) { magnitude } else { -magnitude };
                        drift.push(DriftEntry { core, neuron, delta });
                    }
                }
            }
        }

        let stats = FaultStats { drifted_neurons: drift.len() as u64, ..FaultStats::default() };
        Ok(ActiveFaults {
            rng: SmallRng::seed_from_u64(plan.seed),
            plan: plan.clone(),
            per_core,
            active_axons,
            always_live,
            drift,
            stats,
        })
    }

    /// The source plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters accumulated since compile.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether `core` is dead (never stepped, deliveries discarded).
    pub fn is_dead(&self, core: u32) -> bool {
        self.per_core.get(core as usize).is_some_and(|c| c.as_ref().is_some_and(|cf| cf.dead))
    }

    /// Consulted for every spike delivery: `true` if the delivery must be
    /// discarded (dead core or stuck-silent axon). Counts suppressions.
    pub fn suppresses_delivery(&mut self, core: u32, axon: u16) -> bool {
        let Some(cf) = self.per_core.get(core as usize).and_then(|c| c.as_deref()) else {
            return false;
        };
        if cf.dead || cf.silent_axons.binary_search(&axon).is_ok() {
            self.stats.deliveries_suppressed += 1;
            true
        } else {
            false
        }
    }

    /// `(core, axon)` pairs that receive one spike every tick.
    pub fn stuck_active_axons(&self) -> &[(u32, u16)] {
        &self.active_axons
    }

    /// Calls `deliver` once per stuck-active axon that is actually
    /// reachable this tick — pairs on dead cores or stuck-silent axons
    /// are counted as suppressed instead, exactly as
    /// [`suppresses_delivery`](ActiveFaults::suppresses_delivery) would.
    pub fn for_each_stuck_active_delivery(&mut self, mut deliver: impl FnMut(u32, u16)) {
        let per_core = &self.per_core;
        let stats = &mut self.stats;
        for &(core, axon) in &self.active_axons {
            if let Some(cf) = per_core.get(core as usize).and_then(|c| c.as_deref()) {
                if cf.dead || cf.silent_axons.binary_search(&axon).is_ok() {
                    stats.deliveries_suppressed += 1;
                    continue;
                }
            }
            deliver(core, axon);
        }
    }

    /// Cores that must stay on the simulator's per-tick worklist because
    /// a stuck-active element keeps them busy.
    pub fn always_live_cores(&self) -> &[u32] {
        &self.always_live
    }

    /// Whether this plan does *anything* on a tick with no scheduled cores
    /// and no due deliveries. When `false`, an idle tick under this plan is
    /// indistinguishable from an idle unfaulted tick (no deliveries, no
    /// wakeups, no counter movement), so a simulator may fast-forward
    /// across idle stretches without consulting the plan per tick.
    pub fn has_tick_wakeups(&self) -> bool {
        !self.active_axons.is_empty() || !self.always_live.is_empty()
    }

    /// Rewrites a core's fired-neuron list in place: stuck-silent firings
    /// are removed, stuck-active neurons are inserted (once per tick).
    /// `fired` must be in ascending neuron order, as the core produces
    /// it; the order is preserved.
    pub fn filter_fired(&mut self, core: u32, fired: &mut Vec<u16>) {
        let Some(cf) = self.per_core.get(core as usize).and_then(|c| c.as_deref()) else {
            return;
        };
        if !cf.silent_neurons.is_empty() {
            let before = fired.len();
            fired.retain(|n| cf.silent_neurons.binary_search(n).is_err());
            self.stats.firings_suppressed += (before - fired.len()) as u64;
        }
        for &n in &cf.active_neurons {
            if let Err(pos) = fired.binary_search(&n) {
                fired.insert(pos, n);
                self.stats.firings_forced += 1;
            }
        }
    }

    /// Decides the fate of one fabric-routed spike. Draws from the fault
    /// PRNG in a fixed order (drop, duplicate, then per-copy jitter) so
    /// the decision stream is reproducible.
    pub fn fabric_route_fate(&mut self) -> RouteFate {
        let mut fate = RouteFate::HEALTHY;
        if self.plan.drop_rate > 0.0 && self.rng.random::<f32>() < self.plan.drop_rate {
            self.stats.spikes_dropped += 1;
            fate.copies = 0;
            return fate;
        }
        if self.plan.duplicate_rate > 0.0 && self.rng.random::<f32>() < self.plan.duplicate_rate {
            self.stats.spikes_duplicated += 1;
            fate.copies = 2;
        }
        if self.plan.jitter_rate > 0.0 && self.plan.delay_jitter > 0 {
            for copy in 0..fate.copies as usize {
                if self.rng.random::<f32>() < self.plan.jitter_rate {
                    self.stats.spikes_jittered += 1;
                    fate.extra[copy] = self.rng.random_range(1..=self.plan.delay_jitter);
                }
            }
        }
        fate
    }

    /// Decides the fate of one host-output spike: 0, 1 or 2 copies.
    /// Output events carry no routing delay, so jitter does not apply.
    pub fn output_route_fate(&mut self) -> u8 {
        if self.plan.drop_rate > 0.0 && self.rng.random::<f32>() < self.plan.drop_rate {
            self.stats.spikes_dropped += 1;
            return 0;
        }
        if self.plan.duplicate_rate > 0.0 && self.rng.random::<f32>() < self.plan.duplicate_rate {
            self.stats.spikes_duplicated += 1;
            2
        } else {
            1
        }
    }

    /// Whether any stochastic fabric fault is configured — lets the
    /// simulator skip the per-spike fate call entirely on plans that only
    /// contain structural faults.
    pub fn has_stochastic_routing(&self) -> bool {
        self.plan.drop_rate > 0.0
            || self.plan.duplicate_rate > 0.0
            || (self.plan.jitter_rate > 0.0 && self.plan.delay_jitter > 0)
    }

    /// The compiled threshold-drift assignment, sorted by (core, neuron).
    pub fn drift_entries(&self) -> &[DriftEntry] {
        &self.drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(plan: &FaultPlan) -> ActiveFaults {
        ActiveFaults::compile(plan, 8, 256, 256).unwrap()
    }

    #[test]
    fn trivial_plan_compiles_to_no_ops() {
        let mut f = compile(&FaultPlan::default());
        assert!(!f.is_dead(0));
        assert!(!f.suppresses_delivery(0, 0));
        assert!(f.stuck_active_axons().is_empty());
        assert!(f.always_live_cores().is_empty());
        assert!(f.drift_entries().is_empty());
        assert_eq!(f.fabric_route_fate(), RouteFate::HEALTHY);
        assert_eq!(f.output_route_fate(), 1);
        assert!(!f.has_stochastic_routing());
        assert_eq!(f.stats(), FaultStats::default());
    }

    #[test]
    fn tick_wakeups_track_stuck_active_elements() {
        assert!(!compile(&FaultPlan::default()).has_tick_wakeups());
        // Structural and stochastic faults act only on traffic already in
        // flight — idle ticks stay skippable.
        assert!(!compile(&FaultPlan::seeded(4).with_dead_core(1)).has_tick_wakeups());
        assert!(!compile(&FaultPlan::seeded(4).with_drop_rate(0.5)).has_tick_wakeups());
        assert!(!compile(&FaultPlan::seeded(4).with_stuck_axon(0, 0, StuckAt::Silent))
            .has_tick_wakeups());
        // Stuck-active elements generate traffic each tick.
        assert!(compile(&FaultPlan::seeded(4).with_stuck_axon(0, 0, StuckAt::Active))
            .has_tick_wakeups());
        assert!(compile(&FaultPlan::seeded(4).with_stuck_neuron(0, 0, StuckAt::Active))
            .has_tick_wakeups());
    }

    #[test]
    fn dead_core_suppresses_and_reports() {
        let mut f = compile(&FaultPlan::seeded(1).with_dead_core(3));
        assert!(f.is_dead(3));
        assert!(!f.is_dead(2));
        assert!(f.suppresses_delivery(3, 17));
        assert!(!f.suppresses_delivery(2, 17));
        assert_eq!(f.stats().deliveries_suppressed, 1);
    }

    #[test]
    fn stuck_tables_sorted_and_consulted() {
        let mut f = compile(
            &FaultPlan::seeded(2)
                .with_stuck_axon(1, 9, StuckAt::Silent)
                .with_stuck_axon(1, 4, StuckAt::Silent)
                .with_stuck_axon(2, 7, StuckAt::Active)
                .with_stuck_neuron(1, 30, StuckAt::Silent)
                .with_stuck_neuron(1, 10, StuckAt::Active),
        );
        assert!(f.suppresses_delivery(1, 4));
        assert!(f.suppresses_delivery(1, 9));
        assert!(!f.suppresses_delivery(1, 5));
        assert_eq!(f.stuck_active_axons(), &[(2, 7)]);
        assert_eq!(f.always_live_cores(), &[1, 2]);

        let mut fired = vec![5, 30, 200];
        f.filter_fired(1, &mut fired);
        assert_eq!(fired, vec![5, 10, 200], "30 suppressed, 10 forced, order kept");
        let s = f.stats();
        assert_eq!(s.firings_suppressed, 1);
        assert_eq!(s.firings_forced, 1);

        // A second tick where the stuck-active neuron fired naturally:
        // no forced event is added on top.
        let mut fired = vec![10];
        f.filter_fired(1, &mut fired);
        assert_eq!(fired, vec![10]);
        assert_eq!(f.stats().firings_forced, 1);
    }

    #[test]
    fn dead_core_needs_no_wakeups() {
        let f = compile(&FaultPlan::seeded(3).with_dead_core(2).with_stuck_neuron(
            2,
            0,
            StuckAt::Active,
        ));
        assert!(f.always_live_cores().is_empty(), "dead cores are never stepped");
    }

    #[test]
    fn route_fates_replay_exactly() {
        let plan = FaultPlan::seeded(42)
            .with_drop_rate(0.3)
            .with_duplicate_rate(0.2)
            .with_delay_jitter(0.5, 6);
        let mut a = compile(&plan);
        let mut b = compile(&plan);
        let fates_a: Vec<RouteFate> = (0..500).map(|_| a.fabric_route_fate()).collect();
        let fates_b: Vec<RouteFate> = (0..500).map(|_| b.fabric_route_fate()).collect();
        assert_eq!(fates_a, fates_b);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().spikes_dropped > 0);
        assert!(a.stats().spikes_duplicated > 0);
        assert!(a.stats().spikes_jittered > 0);
        // Jitter never exceeds the configured bound.
        assert!(fates_a.iter().all(|f| f.extra[0] <= 6 && f.extra[1] <= 6));
        // A different seed produces a different stream.
        let mut c = compile(&FaultPlan { seed: 43, ..plan });
        let fates_c: Vec<RouteFate> = (0..500).map(|_| c.fabric_route_fate()).collect();
        assert_ne!(fates_a, fates_c);
    }

    #[test]
    fn drift_assignment_is_deterministic_and_bounded() {
        let plan = FaultPlan::seeded(7).with_threshold_drift(0.25, 5);
        let a = compile(&plan);
        let b = compile(&plan);
        assert_eq!(a.drift_entries(), b.drift_entries());
        assert!(!a.drift_entries().is_empty());
        assert_eq!(a.stats().drifted_neurons, a.drift_entries().len() as u64);
        for d in a.drift_entries() {
            assert!(d.delta != 0 && d.delta.abs() <= 5, "delta {}", d.delta);
        }
        // Roughly the configured fraction of 8*256 neurons drifts.
        let frac = a.drift_entries().len() as f64 / (8.0 * 256.0);
        assert!((frac - 0.25).abs() < 0.08, "drift fraction {frac}");
    }

    #[test]
    fn compile_rejects_out_of_shape_plans() {
        let plan = FaultPlan::seeded(0).with_dead_core(8);
        assert!(ActiveFaults::compile(&plan, 8, 256, 256).is_err());
    }

    #[test]
    fn full_drop_loses_everything() {
        let mut f = compile(&FaultPlan::seeded(9).with_drop_rate(1.0));
        for _ in 0..50 {
            assert_eq!(f.fabric_route_fate().copies, 0);
            assert_eq!(f.output_route_fate(), 0);
        }
        assert_eq!(f.stats().spikes_dropped, 100);
    }
}
