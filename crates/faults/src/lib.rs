//! Deterministic fault injection for the TrueNorth simulator.
//!
//! Real neurosynaptic chips ship with yield loss: dead cores, stuck-at
//! axons and neurons, marginal routing that drops, duplicates or delays
//! spikes, and analog threshold drift. This crate describes such defects
//! as a declarative, serde-able [`FaultPlan`] and compiles them into an
//! [`ActiveFaults`] table the simulator consults from its tick loop.
//!
//! Two contracts make the layer usable for experiments:
//!
//! 1. **Zero-fault transparency** — a plan with no faults (see
//!    [`FaultPlan::is_trivial`]) injects nothing and draws nothing, so a
//!    simulator running under it is bit-identical to one with no plan
//!    attached.
//! 2. **Exact replay** — all stochastic decisions come from a dedicated
//!    PRNG seeded by [`FaultPlan::seed`], never from the simulator's own
//!    generator, so any `(system seed, plan)` pair reproduces the same
//!    spike trains run after run.
//!
//! ```
//! use pcnn_faults::{ActiveFaults, FaultPlan, StuckAt};
//!
//! let plan = FaultPlan::seeded(7)
//!     .with_dead_core(2)
//!     .with_stuck_axon(0, 14, StuckAt::Silent)
//!     .with_drop_rate(0.01)
//!     .with_delay_jitter(0.05, 3);
//! let mut faults = ActiveFaults::compile(&plan, 4, 256, 256).unwrap();
//! assert!(faults.is_dead(2));
//! assert!(faults.suppresses_delivery(0, 14));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod plan;

pub use active::{ActiveFaults, DriftEntry, FaultStats, RouteFate};
pub use plan::{FaultError, FaultPlan, StuckAt, StuckAxon, StuckNeuron, MAX_JITTER};
