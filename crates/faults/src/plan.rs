//! The declarative fault model: what is broken, and how.
//!
//! A [`FaultPlan`] is a serializable description of every defect injected
//! into a simulated neurosynaptic system. Plans are *seeded*: together
//! with the system's own PRNG seed, a plan pins down the faulted
//! simulation bit for bit, so any observed failure replays exactly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum extra routing delay a jittered spike may pick up; keeps the
/// total delay within the fabric's 15-tick wheel.
pub const MAX_JITTER: u8 = 14;

/// The two stuck-at polarities of a defective axon or neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StuckAt {
    /// The element never carries a spike: deliveries to a stuck-silent
    /// axon are discarded; firings of a stuck-silent neuron never leave
    /// the core.
    Silent,
    /// The element spikes every tick: a stuck-active axon injects one
    /// event per tick; a stuck-active neuron emits a spike on every tick
    /// regardless of its membrane potential.
    Active,
}

/// A defective axon on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckAxon {
    /// Core index within the system.
    pub core: u32,
    /// Axon index within the core.
    pub axon: u16,
    /// Stuck polarity.
    pub stuck: StuckAt,
}

/// A defective neuron on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StuckNeuron {
    /// Core index within the system.
    pub core: u32,
    /// Neuron index within the core.
    pub neuron: u16,
    /// Stuck polarity.
    pub stuck: StuckAt,
}

/// A seeded, serializable description of injected hardware faults.
///
/// The default plan is fault-free; a system running under it is
/// **bit-identical** to one with no plan attached at all (pinned by
/// tests in `pcnn-truenorth`). All stochastic faults (spike drop,
/// duplication, delay jitter, threshold-drift assignment) draw from a
/// dedicated PRNG seeded with [`seed`](FaultPlan::seed), never from the
/// system's own PRNG, so attaching a plan does not perturb healthy
/// stochastic neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// Seed of the fault PRNG (drop/duplication/jitter decisions and
    /// drift assignment).
    pub seed: u64,
    /// Cores lost to yield: never stepped, all deliveries to them
    /// discarded.
    pub dead_cores: Vec<u32>,
    /// Stuck-at axons.
    pub stuck_axons: Vec<StuckAxon>,
    /// Stuck-at neurons.
    pub stuck_neurons: Vec<StuckNeuron>,
    /// Probability that a routed fabric spike is silently lost.
    pub drop_rate: f32,
    /// Probability that a routed fabric spike is delivered twice.
    pub duplicate_rate: f32,
    /// Probability that a routed spike picks up extra delay.
    pub jitter_rate: f32,
    /// Maximum extra ticks a jittered spike is late by (`1..=delay_jitter`,
    /// capped at [`MAX_JITTER`]).
    pub delay_jitter: u8,
    /// Probability that any given neuron's firing threshold drifts.
    pub drift_rate: f32,
    /// Maximum absolute threshold drift, in potential units.
    pub drift_magnitude: i32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            dead_cores: Vec::new(),
            stuck_axons: Vec::new(),
            stuck_neurons: Vec::new(),
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            jitter_rate: 0.0,
            delay_jitter: 0,
            drift_rate: 0.0,
            drift_magnitude: 0,
        }
    }
}

impl FaultPlan {
    /// A fault-free plan with the given fault-PRNG seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Marks `core` dead.
    pub fn with_dead_core(mut self, core: u32) -> Self {
        self.dead_cores.push(core);
        self
    }

    /// Marks the given cores dead.
    pub fn with_dead_cores(mut self, cores: impl IntoIterator<Item = u32>) -> Self {
        self.dead_cores.extend(cores);
        self
    }

    /// Adds a stuck-at axon.
    pub fn with_stuck_axon(mut self, core: u32, axon: u16, stuck: StuckAt) -> Self {
        self.stuck_axons.push(StuckAxon { core, axon, stuck });
        self
    }

    /// Adds a stuck-at neuron.
    pub fn with_stuck_neuron(mut self, core: u32, neuron: u16, stuck: StuckAt) -> Self {
        self.stuck_neurons.push(StuckNeuron { core, neuron, stuck });
        self
    }

    /// Sets the fabric spike-loss probability.
    pub fn with_drop_rate(mut self, rate: f32) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the fabric spike-duplication probability.
    pub fn with_duplicate_rate(mut self, rate: f32) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Sets delay jitter: each routed spike is late by `1..=max_extra`
    /// extra ticks with probability `rate`.
    pub fn with_delay_jitter(mut self, rate: f32, max_extra: u8) -> Self {
        self.jitter_rate = rate;
        self.delay_jitter = max_extra;
        self
    }

    /// Sets threshold drift: each neuron's threshold shifts by a value in
    /// `-magnitude..=magnitude` with probability `rate` (assignment drawn
    /// deterministically from the plan seed).
    pub fn with_threshold_drift(mut self, rate: f32, magnitude: i32) -> Self {
        self.drift_rate = rate;
        self.drift_magnitude = magnitude;
        self
    }

    /// Whether the plan injects no faults at all. A trivial plan leaves
    /// the simulator bit-identical to an unfaulted run.
    pub fn is_trivial(&self) -> bool {
        self.dead_cores.is_empty()
            && self.stuck_axons.is_empty()
            && self.stuck_neurons.is_empty()
            && self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && (self.jitter_rate == 0.0 || self.delay_jitter == 0)
            && (self.drift_rate == 0.0 || self.drift_magnitude == 0)
    }

    /// Validates rates, jitter bounds and element indices against a
    /// system of `core_count` cores with `axons_per_core` axons and
    /// `neurons_per_core` neurons per core.
    ///
    /// # Errors
    ///
    /// [`FaultError`] naming the first violated constraint.
    pub fn validate(
        &self,
        core_count: usize,
        axons_per_core: usize,
        neurons_per_core: usize,
    ) -> Result<(), FaultError> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("jitter_rate", self.jitter_rate),
            ("drift_rate", self.drift_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(FaultError::RateOutOfRange { name, rate });
            }
        }
        if self.delay_jitter > MAX_JITTER {
            return Err(FaultError::JitterTooLarge { jitter: self.delay_jitter });
        }
        if self.drift_magnitude < 0 {
            return Err(FaultError::NegativeDriftMagnitude { magnitude: self.drift_magnitude });
        }
        for &core in &self.dead_cores {
            if core as usize >= core_count {
                return Err(FaultError::CoreOutOfRange { core, cores: core_count });
            }
        }
        for a in &self.stuck_axons {
            if a.core as usize >= core_count {
                return Err(FaultError::CoreOutOfRange { core: a.core, cores: core_count });
            }
            if a.axon as usize >= axons_per_core {
                return Err(FaultError::AxonOutOfRange { axon: a.axon, axons: axons_per_core });
            }
        }
        for n in &self.stuck_neurons {
            if n.core as usize >= core_count {
                return Err(FaultError::CoreOutOfRange { core: n.core, cores: core_count });
            }
            if n.neuron as usize >= neurons_per_core {
                return Err(FaultError::NeuronOutOfRange {
                    neuron: n.neuron,
                    neurons: neurons_per_core,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// A probability was outside `[0, 1]`.
    RateOutOfRange {
        /// Which rate field.
        name: &'static str,
        /// The offending value.
        rate: f32,
    },
    /// The jitter bound exceeded [`MAX_JITTER`].
    JitterTooLarge {
        /// The offending bound.
        jitter: u8,
    },
    /// A negative drift magnitude.
    NegativeDriftMagnitude {
        /// The offending magnitude.
        magnitude: i32,
    },
    /// A fault referenced a core the system does not have.
    CoreOutOfRange {
        /// The offending core index.
        core: u32,
        /// Cores actually present.
        cores: usize,
    },
    /// A stuck axon index exceeded the per-core axon count.
    AxonOutOfRange {
        /// The offending axon index.
        axon: u16,
        /// Axons per core.
        axons: usize,
    },
    /// A stuck neuron index exceeded the per-core neuron count.
    NeuronOutOfRange {
        /// The offending neuron index.
        neuron: u16,
        /// Neurons per core.
        neurons: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RateOutOfRange { name, rate } => {
                write!(f, "fault plan {name} {rate} outside [0, 1]")
            }
            FaultError::JitterTooLarge { jitter } => {
                write!(f, "delay jitter {jitter} exceeds the {MAX_JITTER}-tick maximum")
            }
            FaultError::NegativeDriftMagnitude { magnitude } => {
                write!(f, "drift magnitude {magnitude} is negative")
            }
            FaultError::CoreOutOfRange { core, cores } => {
                write!(f, "fault targets core {core} but the system has {cores} cores")
            }
            FaultError::AxonOutOfRange { axon, axons } => {
                write!(f, "stuck axon {axon} out of range (0..{axons})")
            }
            FaultError::NeuronOutOfRange { neuron, neurons } => {
                write!(f, "stuck neuron {neuron} out of range (0..{neurons})")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_trivial() {
        assert!(FaultPlan::default().is_trivial());
        assert!(FaultPlan::seeded(99).is_trivial());
        // A jitter bound with zero rate (and vice versa) is still trivial.
        assert!(FaultPlan::seeded(1).with_delay_jitter(0.0, 5).is_trivial());
        assert!(FaultPlan::seeded(1).with_delay_jitter(0.5, 0).is_trivial());
        assert!(FaultPlan::seeded(1).with_threshold_drift(0.5, 0).is_trivial());
        assert!(!FaultPlan::seeded(1).with_dead_core(0).is_trivial());
        assert!(!FaultPlan::seeded(1).with_drop_rate(0.1).is_trivial());
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan::seeded(7)
            .with_dead_core(3)
            .with_stuck_axon(1, 200, StuckAt::Silent)
            .with_stuck_neuron(2, 17, StuckAt::Active)
            .with_drop_rate(0.05)
            .with_duplicate_rate(0.01)
            .with_delay_jitter(0.2, 3)
            .with_threshold_drift(0.1, 4);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn missing_fields_deserialize_to_defaults() {
        let plan: FaultPlan = serde_json::from_str(r#"{"seed": 5, "drop_rate": 0.25}"#).unwrap();
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.drop_rate, 0.25);
        assert!(plan.dead_cores.is_empty());
        assert_eq!(plan.delay_jitter, 0);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let cores = 4;
        let ok = |p: &FaultPlan| p.validate(cores, 256, 256);
        assert!(ok(&FaultPlan::default()).is_ok());
        assert!(matches!(
            ok(&FaultPlan::seeded(0).with_drop_rate(1.5)),
            Err(FaultError::RateOutOfRange { name: "drop_rate", .. })
        ));
        assert!(matches!(
            ok(&FaultPlan::seeded(0).with_delay_jitter(0.1, 15)),
            Err(FaultError::JitterTooLarge { jitter: 15 })
        ));
        assert!(matches!(
            ok(&FaultPlan::seeded(0).with_dead_core(4)),
            Err(FaultError::CoreOutOfRange { core: 4, cores: 4 })
        ));
        assert!(matches!(
            ok(&FaultPlan::seeded(0).with_stuck_axon(0, 300, StuckAt::Silent)),
            Err(FaultError::AxonOutOfRange { axon: 300, .. })
        ));
        assert!(matches!(
            ok(&FaultPlan::seeded(0).with_stuck_neuron(0, 256, StuckAt::Active)),
            Err(FaultError::NeuronOutOfRange { neuron: 256, .. })
        ));
        let mut drifty = FaultPlan::seeded(0);
        drifty.drift_magnitude = -3;
        drifty.drift_rate = 0.5;
        assert!(matches!(ok(&drifty), Err(FaultError::NegativeDriftMagnitude { magnitude: -3 })));
    }
}
