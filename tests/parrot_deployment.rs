//! Integration: the Parrot co-design contract — trained weights deploy
//! onto simulated neurosynaptic cores with matching behaviour, and the
//! deployed module's resource/throughput numbers line up with the
//! power-model assumptions.

use pcnn::eedn::mapping::{deploy_mlp, reference_forward, validate_deployment};
use pcnn::eedn::Tensor;
use pcnn::parrot::{train_parrot, ParrotTrainConfig, TrainDataGenerator};

#[test]
fn trained_parrot_deploys_and_matches_software() {
    let (net, _) =
        train_parrot(ParrotTrainConfig { samples: 600, epochs: 5, ..ParrotTrainConfig::tiny() });
    let specs = net.to_specs();
    let mut deployed = deploy_mlp(&specs).expect("parrot fits the crossbars");
    assert_eq!(deployed.core_count(), net.core_count());

    let generator = TrainDataGenerator::new(Default::default());
    let inputs =
        Tensor::from_rows(&(0..4).map(|i| generator.sample(5000 + i).pixels).collect::<Vec<_>>());
    let err = validate_deployment(&specs, &mut deployed, &inputs, 64);
    assert!(err < 0.06, "mean |hw − sw| rate error {err}");
}

#[test]
fn deployment_rejects_oversized_layers() {
    use pcnn::eedn::mapping::{DenseSpec, GroupSpec};
    // 200 inputs in one group exceeds the ± axon budget.
    let bad = DenseSpec {
        in_dim: 200,
        out_dim: 4,
        groups: vec![GroupSpec {
            in_offset: 0,
            out_offset: 0,
            weights: vec![vec![1.0; 200]; 4],
            alpha: vec![0.1; 4],
            bias: vec![0.0; 4],
        }],
        input_perm: None,
    };
    assert!(deploy_mlp(&[bad]).is_err());
}

#[test]
fn reference_forward_is_pure() {
    let (net, _) =
        train_parrot(ParrotTrainConfig { samples: 200, epochs: 1, ..ParrotTrainConfig::tiny() });
    let specs = net.to_specs();
    let x = vec![0.4f32; 100];
    assert_eq!(reference_forward(&specs, &x), reference_forward(&specs, &x));
}
