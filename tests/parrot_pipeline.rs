//! Integration: the trained parrot runs inside the full detection
//! pipeline, end to end, as a drop-in replacement for NApprox.

use pcnn::core::{Detector, EednClassifierConfig, Extractor, PartitionedSystem, TrainSetConfig};
use pcnn::hog::BlockNorm;
use pcnn::parrot::{train_parrot, ParrotExtractor, ParrotTrainConfig};
use pcnn::vision::{SynthConfig, SynthDataset};

#[test]
fn parrot_detector_detects_in_scenes() {
    let ds = SynthDataset::new(SynthConfig::default());
    let (net, report) = train_parrot(ParrotTrainConfig::tiny());
    assert!(report.class_accuracy > 0.4, "parrot too weak: {report:?}");

    let det = PartitionedSystem::train_eedn_detector(
        Extractor::parrot(ParrotExtractor::new(net), BlockNorm::None),
        &ds,
        TrainSetConfig { n_pos: 60, n_neg: 120, mining_scenes: 2, mining_rounds: 1 },
        EednClassifierConfig { epochs: 12, ..Default::default() },
    );
    let scenes: Vec<_> = (0..4).map(|i| ds.test_scene(i)).collect();
    let curve = Detector::default().evaluate(&det, &scenes);
    // A weak parrot + small classifier still must beat the blind baseline.
    let lamr = curve.log_average_miss_rate();
    assert!(lamr < 0.95, "parrot pipeline lamr {lamr}");
}

#[test]
fn stochastic_parrot_extractor_runs_in_pipeline() {
    // The Fig. 6 configuration: 4-spike stochastic input coding.
    let ds = SynthDataset::new(SynthConfig::default());
    let (net, _) =
        train_parrot(ParrotTrainConfig { samples: 400, epochs: 2, ..ParrotTrainConfig::tiny() });
    let extractor =
        Extractor::parrot(ParrotExtractor::new(net).with_stochastic_input(4, 99), BlockNorm::None);
    // Descriptor extraction under observation noise stays well-formed.
    let d1 = extractor.crop_descriptor(&ds.train_positive(0));
    assert_eq!(d1.len(), 2304);
    assert!(d1.iter().all(|v| v.is_finite() && *v >= 0.0));
}
