//! Integration: everything is seeded — whole experiments reproduce
//! bit-identically across runs.

use pcnn::core::{Detector, Extractor, PartitionedSystem, TrainSetConfig};
use pcnn::hog::BlockNorm;
use pcnn::parrot::{train_parrot, ParrotTrainConfig};
use pcnn::vision::{SynthConfig, SynthDataset};

#[test]
fn detection_results_reproduce_exactly() {
    let run = || {
        let ds = SynthDataset::new(SynthConfig::default());
        let det = PartitionedSystem::train_svm_detector(
            Extractor::napprox_fp(BlockNorm::L2),
            &ds,
            TrainSetConfig { n_pos: 40, n_neg: 80, mining_scenes: 1, mining_rounds: 1 },
        );
        let scene = ds.test_scene(2);
        Detector::default()
            .detect(&det, &scene.image)
            .into_iter()
            .map(|d| (d.score, d.bbox.x, d.bbox.y))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn parrot_training_reproduces_exactly() {
    let cfg = ParrotTrainConfig { samples: 300, epochs: 2, ..ParrotTrainConfig::tiny() };
    let (_, a) = train_parrot(cfg);
    let (_, b) = train_parrot(cfg);
    assert_eq!(a.validation_mse, b.validation_mse);
    assert_eq!(a.class_accuracy, b.class_accuracy);
}

#[test]
fn corelet_extraction_reproduces_exactly() {
    use pcnn::corelets::NApproxHogCorelet;
    use pcnn::vision::GrayImage;
    let patch = GrayImage::from_fn(10, 10, |x, y| ((3 * x + 5 * y) % 11) as f32 / 11.0);
    let mut m1 = NApproxHogCorelet::new(64);
    let mut m2 = NApproxHogCorelet::new(64);
    assert_eq!(m1.extract(&patch), m2.extract(&patch));
}

#[test]
fn different_dataset_seeds_differ() {
    let a = SynthDataset::new(SynthConfig { seed: 1, ..SynthConfig::default() });
    let b = SynthDataset::new(SynthConfig { seed: 2, ..SynthConfig::default() });
    assert_ne!(a.test_scene(0).image, b.test_scene(0).image);
}
