//! Integration: the full pipeline from synthetic scenes through feature
//! extraction and classification to miss-rate curves, across crates.

use pcnn::core::{Detector, EednClassifierConfig, Extractor, PartitionedSystem, TrainSetConfig};
use pcnn::hog::BlockNorm;
use pcnn::vision::{SynthConfig, SynthDataset};

fn small_train() -> TrainSetConfig {
    TrainSetConfig { n_pos: 70, n_neg: 140, mining_scenes: 2, mining_rounds: 1 }
}

#[test]
fn svm_detector_beats_blind_baseline() {
    let ds = SynthDataset::new(SynthConfig::default());
    let scenes: Vec<_> = (0..8).map(|i| ds.test_scene(i)).collect();
    let total_gt: usize = scenes.iter().map(|s| s.pedestrians.len()).sum();
    assert!(total_gt > 0, "evaluation set must contain pedestrians");

    let det = PartitionedSystem::train_svm_detector(
        Extractor::napprox_fp(BlockNorm::L2),
        &ds,
        small_train(),
    );
    let curve = Detector::default().evaluate(&det, &scenes);
    let lamr = curve.log_average_miss_rate();
    // A blind detector has lamr 1.0; the trained one must do much better.
    assert!(lamr < 0.8, "log-average miss rate {lamr}");
}

#[test]
fn quantized_napprox_close_to_full_precision_detection() {
    // Figure 4's core claim at integration level: quantization does not
    // wreck feature quality. Scene-level lamr is too noisy at unit-test
    // scale (the full-scale comparison lives in the fig4 harness and
    // EXPERIMENTS.md), so compare held-out *crop* classification, which
    // is stable.
    let ds = SynthDataset::new(SynthConfig::default());
    let engine = Detector::default();
    let _ = engine; // crop-level comparison needs no scanning

    let crop_accuracy = |extractor: Extractor| -> f32 {
        let det = PartitionedSystem::train_svm_detector(extractor, &ds, small_train());
        let mut correct = 0;
        for i in 0..40 {
            let d = det.extractor.crop_descriptor(&ds.train_positive(900 + i));
            if det.classifier.score(&d) > 0.0 {
                correct += 1;
            }
            let d = det.extractor.crop_descriptor(&ds.train_negative(900 + i));
            if det.classifier.score(&d) <= 0.0 {
                correct += 1;
            }
        }
        correct as f32 / 80.0
    };
    let acc_fp = crop_accuracy(Extractor::napprox_fp(BlockNorm::L2));
    let acc_qz = crop_accuracy(Extractor::napprox_quantized(64, BlockNorm::L2));
    assert!((acc_fp - acc_qz).abs() < 0.1, "fp crop accuracy {acc_fp} vs quantized {acc_qz}");
    assert!(acc_qz > 0.75, "quantized crop accuracy {acc_qz}");
}

#[test]
fn eedn_classified_detector_works_without_block_norm() {
    // The Figure 5 configuration: raw 18-bin cell features, Eedn
    // classifier, no contrast normalization.
    let ds = SynthDataset::new(SynthConfig::default());
    let scenes: Vec<_> = (0..6).map(|i| ds.test_scene(i)).collect();
    let det = PartitionedSystem::train_eedn_detector(
        Extractor::napprox_quantized(64, BlockNorm::None),
        &ds,
        small_train(),
        EednClassifierConfig { epochs: 15, ..Default::default() },
    );
    let curve = Detector::default().evaluate(&det, &scenes);
    assert!(curve.log_average_miss_rate() < 0.9);
}
