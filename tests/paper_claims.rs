//! Integration: the paper's quantitative headline claims, codified.

use pcnn::core::power::{full_hd_cells_per_second, PowerTable};
use pcnn::core::ResourceBudget;
use pcnn::corelets::{correlation_study, NApproxHogCorelet};
use pcnn::vision::pyramid::full_hd_total_cells;

#[test]
fn full_hd_workload_is_57749_cells() {
    // §5.2: "{240×135, 160×90, 106×60, 71×40, 47×26, 31×17}, a total of
    // 57749 cells per image."
    assert_eq!(full_hd_total_cells(), 57_749);
    // "the system should have an overall throughput of 1.5 million
    // cells/second" at 26 fps.
    assert!((full_hd_cells_per_second() / 1.5e6 - 1.0).abs() < 0.01);
}

#[test]
fn table2_power_figures() {
    // Table 2: NApprox 40 W; Parrot 6.15 W / 768 mW / 192 mW.
    let t = PowerTable::paper();
    assert!((t.rows[0].power_w - 40.0).abs() < 1.0);
    assert!((t.rows[1].power_w - 6.15).abs() < 0.1);
    assert!((t.rows[2].power_w - 0.768).abs() < 0.01);
    assert!((t.rows[3].power_w - 0.192).abs() < 0.003);
}

#[test]
fn abstract_power_ratio_65x_to_208x() {
    // Abstract: "more power efficient than the programmed approach by a
    // factor of 6.5x-208x".
    let t = PowerTable::paper();
    assert!((t.napprox_over(1) - 6.5).abs() < 0.2);
    assert!((t.napprox_over(3) - 208.0).abs() < 6.0);
}

#[test]
fn combined_partitioned_budget_is_3888_cores() {
    // §5.1: 2864-core classifier + 8 cores/cell × 128 cells = 3888.
    assert_eq!(ResourceBudget::paper_parrot().combined_cores(), 3888);
}

#[test]
fn napprox_hardware_software_correlation_exceeds_995() {
    // §3.1: "over 99.5% correlation when configured to operate with the
    // same quantization width" (full 1000-patch study in the bench
    // harness; 50 patches here keep the test fast).
    let report = correlation_study(50, 64, 0x51);
    assert!(report.correlation > 0.995, "correlation {}", report.correlation);
}

#[test]
fn napprox_module_throughput_matches_15_cells_per_second() {
    // §5.2: "a single NApprox HoG module, using 26 TrueNorth cores, can
    // provide a throughput of 15 cells/sec" — ours packs to 30 cores at
    // the same throughput.
    let m = NApproxHogCorelet::new(64);
    assert!((m.cells_per_second() - 15.0).abs() < 1.0);
    assert!(m.core_count() >= 26 && m.core_count() <= 32, "cores {}", m.core_count());
}

#[test]
fn one_spike_parrot_reaches_1000_cells_per_second() {
    // §5.2: "The throughput can be increased to 1000 cells/sec by using
    // 1-spike representation", pipelined at the 1 kHz tick.
    use pcnn::core::power::DeploymentPower;
    let d = DeploymentPower { approach: "parrot".into(), window: 1, module_cores: 8 };
    assert_eq!(d.module_throughput(), 1000.0);
}
