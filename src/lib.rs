//! # pcnn — Partitioned Convolutional Neural Networks
//!
//! Facade crate for the reproduction of *Co-training of Feature Extraction
//! and Classification using Partitioned Convolutional Neural Networks*
//! (Tsai et al., DAC 2017). It re-exports every workspace crate under a
//! stable module hierarchy so downstream users can depend on one crate:
//!
//! * [`truenorth`] — tick-accurate neurosynaptic-system simulator;
//! * [`faults`] — seeded, replayable fault plans (dead cores, stuck
//!   axons/neurons, spike loss, delay jitter, threshold drift) injected
//!   into the simulator;
//! * [`vision`] — image substrate, synthetic pedestrian dataset (still
//!   scenes and seeded temporal video streams), detection evaluation
//!   (miss rate vs. false positives per image);
//! * [`track`] — tracking-by-detection over video streams: temporal NMS
//!   and a greedy-IoU multi-object tracker;
//! * [`hog`] — HoG feature-extraction variants (Dalal–Triggs, FPGA
//!   fixed-point, NApprox neuromorphic approximation);
//! * [`eedn`] — Eedn-style constrained CNN training (trinary weights,
//!   spiking activations, crossbar-sized groups);
//! * [`svm`] — linear SVM with hard-negative mining;
//! * [`corelets`] — the NApprox HoG corelets and Eedn deployment onto the
//!   simulator;
//! * [`parrot`] — the Parrot-HoG trained feature extractor;
//! * [`core`] — the partitioned co-training pipeline, paradigm comparison
//!   and power/throughput models;
//! * [`runtime`] — the parallel, batched detection-serving subsystem
//!   (deterministic work scheduling, request batching with backpressure,
//!   serving metrics, panic isolation, deadlines and retry, plus
//!   temporal video streaming with change-driven cell caching);
//! * [`cluster`] — the sharded, replicated serving tier over the
//!   runtime: rendezvous stream routing, per-shard warm start from
//!   checkpoints, blue/green model swap with drain, cluster-level load
//!   shedding and a seeded open-loop SLO load harness;
//! * [`store`] — crash-safe persistence: a versioned, checksummed
//!   envelope format with atomic-rename writes for trained detectors,
//!   training checkpoints and simulator snapshots;
//! * [`trace`] — zero-dependency span tracing and profiling across the
//!   simulator, kernels, training and serving layers, with Chrome
//!   `trace_event` export and aggregate profile reports.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory and experiment index.

#![forbid(unsafe_code)]

pub use pcnn_cluster as cluster;
pub use pcnn_core as core;
pub use pcnn_corelets as corelets;
pub use pcnn_eedn as eedn;
pub use pcnn_faults as faults;
pub use pcnn_hog as hog;
pub use pcnn_parrot as parrot;
pub use pcnn_runtime as runtime;
pub use pcnn_store as store;
pub use pcnn_svm as svm;
pub use pcnn_trace as trace;
pub use pcnn_track as track;
pub use pcnn_truenorth as truenorth;
pub use pcnn_vision as vision;
