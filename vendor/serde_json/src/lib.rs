//! Workspace-local stand-in for the `serde_json` crate.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses
//! JSON text back, covering the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Result`] and
//! [`Error`] (including `serde::de::Error::custom`). Output follows
//! real `serde_json` conventions: structs as objects, externally-tagged
//! enums, numbers in shortest round-trippable form, non-finite floats
//! as `null`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// The error type for JSON serialization/deserialization.
pub use serde::Error;

/// A `Result` alias defaulting the error to [`Error`].
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// This implementation is infallible in practice; the `Result` is kept
/// for call-site compatibility with real `serde_json`.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Infallible in practice, as for [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 prints the shortest string that parses back
                // to the same value; force a decimal point so the token
                // re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn float_precision_survives() {
        for &f in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-7] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Vec<i32>> = vec![vec![1, -2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<i32>>>(&json).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<(u64, u32)> = vec![(1, 2), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u64, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Vec<u8>>("[1, 2").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
        assert!(from_str::<u8>("[]").is_err());
    }
}
