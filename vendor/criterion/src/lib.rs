//! Workspace-local stand-in for the `criterion` bench harness.
//!
//! The build environment has no access to a crates.io registry, so this
//! crate supplies the API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `criterion_group!`
//! / `criterion_main!` — backed by a simple warmup-then-measure timer
//! that prints mean wall-time per iteration. It has no statistical
//! machinery; it exists so `cargo bench` compiles, runs, and reports
//! comparable numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named cluster of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendering `parameter` alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    iterations: usize,
    total: Duration,
}

impl Bencher {
    /// Times `iterations` runs of `f` after a small warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iterations.div_ceil(10).min(3) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { iterations: sample_size, total: Duration::ZERO };
    f(&mut b);
    let per_iter = if b.iterations > 0 { b.total / b.iterations as u32 } else { Duration::ZERO };
    println!("bench: {label:<40} {per_iter:>12.3?}/iter ({} iters)", b.iterations);
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
