//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the exact API surface it consumes: [`rngs::SmallRng`]
//! (xoshiro256++, the same generator family `rand` 0.9 uses on 64-bit
//! targets, seeded through SplitMix64 like upstream `seed_from_u64`),
//! the [`Rng`]/[`SeedableRng`] methods the code calls, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are not guaranteed bit-identical to upstream `rand`; everything in
//! this repository that depends on randomness is either seeded
//! synthetic data or statistical assertions, both of which only need a
//! good generator, not a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Types seedable from a `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value surface this workspace consumes.
pub trait Rng {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits (upper half of [`next_u64`](Rng::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform random value of `T` (floats in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Value types producible by [`Rng::random`].
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl FromRng for f32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// A uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges samplable by [`Rng::random_range`].
///
/// Blanket-implemented over [`SampleUniform`] (as in upstream `rand`)
/// so type inference can flow from the range literal to the result.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let mut span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if inclusive {
                    span = span.wrapping_add(1);
                    if span == 0 {
                        // Full-domain range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

/// A uniform integer in `[0, bound)` via widening-multiply rejection
/// (Lemire's method), which avoids modulo bias.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low < bound {
            // 2^64 mod bound, computed without overflow.
            let threshold = bound.wrapping_neg() % bound;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                // Scale-and-offset; the open/closed distinction at the top
                // endpoint is below float resolution for the ranges the
                // workspace uses.
                let unit = <$t as FromRng>::from_rng(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the small, fast generator `rand` 0.9 backs
    /// `SmallRng` with on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state fill, as upstream `seed_from_u64` does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing.
        ///
        /// Restoring via [`SmallRng::from_state`] resumes the exact output
        /// sequence from the point of capture.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by [`SmallRng::state`].
        ///
        /// An all-zero state is a fixed point of xoshiro256++ (the generator
        /// would emit zeros forever); it is mapped to `seed_from_u64(0)`
        /// instead. Captured states are never all-zero.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs a deterministic seeded generator.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice randomization (only `shuffle` is used in this workspace).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-0.25..0.25f32);
            assert!((-0.25..0.25).contains(&v));
            let n = rng.random_range(0..7usize);
            assert!(n < 7);
            let m = rng.random_range(3..=5i32);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn state_roundtrip_resumes_sequence() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..37 {
            rng.next_u64();
        }
        let mut resumed = SmallRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The all-zero fixed point is remapped to a working generator.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(4));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
