//! Workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a compatible subset: `#[derive(Serialize,
//! Deserialize)]` (including `#[serde(skip)]`), trait impls for the
//! primitive/container types this repository serializes, and a
//! self-describing [`Value`] tree that `serde_json` renders to and
//! parses from JSON. The serializer data model is intentionally
//! simplified — types serialize straight to [`Value`] — but the JSON
//! produced matches real `serde_json` conventions (maps for structs,
//! externally-tagged enums, newtype transparency), so model files stay
//! human-readable and stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used for values above `i64::MAX`).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order is preserved in output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }
}

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Deserialization-side helpers (mirrors `serde::de`).
pub mod de {
    /// Construction of custom deserialization errors.
    pub trait Error: Sized {
        /// An error with a caller-supplied message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::Error::msg(msg.to_string())
        }
    }
}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape or type mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!("expected {expected}, found {}", got.kind())))
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg("unsigned value overflows signed target"))?,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::msg("negative value for unsigned target"))?,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes non-finite floats as null
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            ("nanos".to_owned(), Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = match value {
            Value::Map(entries) => entries,
            other => return type_err("duration map", other),
        };
        let field = |name: &str| {
            map.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| u64::from_value(v))
                .unwrap_or_else(|| Err(Error::msg(format!("duration missing field `{name}`"))))
        };
        let nanos = u32::try_from(field("nanos")?)
            .map_err(|_| Error::msg("duration nanos out of range"))?;
        Ok(std::time::Duration::new(field("secs")?, nanos))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = match value {
            Value::Array(items) => items,
            other => return type_err("array", other),
        };
        if items.len() != N {
            return Err(Error::msg(format!("expected array of length {N}, found {}", items.len())));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| Error::msg("array length changed during deserialization"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => type_err("2-element array", value),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => type_err("3-element array", value),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let t = (3u64, -9i64);
        assert_eq!(<(u64, i64)>::from_value(&t.to_value()).unwrap(), t);
        let arr = [0.5f32, 1.0, 2.0];
        assert_eq!(<[f32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = u8::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"), "{err}");
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
