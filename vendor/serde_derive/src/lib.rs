//! Workspace-local stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the simplified `serde::Value` data model of the vendored `serde`
//! crate, by walking the raw token stream (no `syn`/`quote` — the build
//! environment has no registry access). Supported shapes are exactly
//! what this workspace derives: non-generic structs (named, tuple,
//! unit) and enums (unit, tuple, and struct variants), plus the
//! `#[serde(skip)]` field attribute (skipped on serialize, filled from
//! `Default` on deserialize) and `#[serde(default)]` (serialized
//! normally, filled from `Default` when the field is absent on
//! deserialize). Anything else panics at compile time with a clear
//! message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

struct NamedField {
    name: String,
    skip: bool,
    default: bool,
}

enum Fields {
    Unit,
    Named(Vec<NamedField>),
    Tuple(usize),
}

enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    data: Data,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading attributes; returns the accumulated
    /// `#[serde(...)]` field flags.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let parsed = parse_serde_attr(g.stream());
                            attrs.skip |= parsed.skip;
                            attrs.default |= parsed.default;
                        }
                        other => panic!("expected [...] after # in attribute, found {other:?}"),
                    }
                }
                _ => return attrs,
            }
        }
    }

    /// Consumes `pub` / `pub(...)` if present.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }

    /// Consumes tokens until a top-level comma (angle-bracket aware) or
    /// the end of the stream; the comma itself is consumed.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

/// Flags gathered from a field's `#[serde(...)]` attributes.
#[derive(Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

fn parse_serde_attr(stream: TokenStream) -> FieldAttrs {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(opt)] if opt.to_string() == "skip" => {
                    FieldAttrs { skip: true, default: false }
                }
                [TokenTree::Ident(opt)] if opt.to_string() == "default" => {
                    FieldAttrs { skip: false, default: true }
                }
                _ => panic!(
                    "vendored serde_derive only supports #[serde(skip)] and #[serde(default)], \
                     found #[serde({})]",
                    args.stream()
                ),
            }
        }
        _ => FieldAttrs::default(), // a non-serde attribute (doc comment, allow, ...)
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    // A container-level #[serde(default)] marks every named field
    // optional on deserialize, as in real serde.
    let container = c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let data = match keyword.as_str() {
        "struct" => {
            let mut fields = parse_struct_body(&mut c, &name);
            if container.default {
                if let Fields::Named(named) = &mut fields {
                    for f in named {
                        f.default = true;
                    }
                }
            }
            Data::Struct(fields)
        }
        "enum" => Data::Enum(parse_enum_body(&mut c, &name)),
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };
    Item { name, data }
}

fn parse_struct_body(c: &mut Cursor, name: &str) -> Fields {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("unsupported struct body for `{name}`: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_until_comma();
        fields.push(NamedField { name, skip: attrs.skip, default: attrs.default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    let mut pending = false; // tokens since the last comma
    for t in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    if !saw_tokens {
        panic!("empty tuple structs are not supported");
    }
    count
}

fn parse_enum_body(c: &mut Cursor, name: &str) -> Vec<(String, Fields)> {
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected enum body for `{name}`, found {other:?}"),
    };
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let vname = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // Discriminant (`= expr`) and/or trailing comma.
        c.skip_until_comma();
        variants.push((vname, fields));
    }
    variants
}

fn named_ser_body(fields: &[NamedField], access: &dyn Fn(&str) -> String) -> String {
    let mut out = String::from(
        "{ let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&{a})));",
            n = f.name,
            a = access(&f.name)
        ));
    }
    out.push_str("::serde::Value::Map(m) }");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Data::Struct(Fields::Named(fields)) => named_ser_body(fields, &|f| format!("self.{f}")),
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(","))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                    )),
                    Fields::Named(fs) => {
                        let bind: Vec<String> =
                            fs.iter().filter(|f| !f.skip).map(|f| f.name.clone()).collect();
                        let dots = if fs.iter().any(|f| f.skip) { ", .." } else { "" };
                        let inner = named_ser_body(fs, &|f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds}{dots} }} => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), {inner})]),",
                            binds = bind.join(", ")
                        ));
                    }
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(v0) => ::serde::Value::Map(vec![(\"{vname}\"\
                         .to_string(), ::serde::Serialize::to_value(v0))]),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(v{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({b}) => ::serde::Value::Map(vec![(\"{vname}\"\
                             .to_string(), ::serde::Value::Array(vec![{i}]))]),",
                            b = binds.join(","),
                            i = items.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn named_de_fields(type_label: &str, fields: &[NamedField], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
        } else if f.default {
            out.push_str(&format!(
                "{n}: match {source}.get(\"{n}\") {{ \
                 ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
                 ::std::option::Option::None => ::std::default::Default::default(), }},",
                n = f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value({source}.get(\"{n}\").ok_or_else(|| \
                 ::serde::Error::msg(\"missing field `{n}` in {type_label}\"))?)?,",
                n = f.name
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Struct(Fields::Named(fields)) => {
            let inits = named_de_fields(name, fields, "value");
            format!(
                "if value.as_map().is_none() {{ return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"expected map for {name}\")); }} \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Data::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Data::Struct(Fields::Tuple(n)) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::msg(\
                 \"expected array for {name}\"))?; \
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"expected {n} elements for {name}\")); }} \
                 ::std::result::Result::Ok({name}({gets}))",
                gets = gets.join(",")
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                        // Accept the map form too, for symmetry with writers
                        // that always externally tag.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    Fields::Named(fs) => {
                        let inits = named_de_fields(&format!("{name}::{vname}"), fs, "inner");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ if inner.as_map().is_none() {{ return \
                             ::std::result::Result::Err(::serde::Error::msg(\"expected map for \
                             {name}::{vname}\")); }} ::std::result::Result::Ok({name}::{vname} \
                             {{ {inits} }}) }},"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for {name}::{vname}\"))?; \
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(\"expected {n} elements for {name}::{vname}\"\
                             )); }} ::std::result::Result::Ok({name}::{vname}({gets})) }},",
                            gets = gets.join(",")
                        ));
                    }
                }
            }
            format!(
                "match value {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => \
                 ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` of {name}\"))) }}, \
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                 let (tag, inner) = &entries[0]; let _ = inner; match tag.as_str() {{ \
                 {tagged_arms} other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant `{{other}}` of {name}\"))) }} }}, \
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected string or single-entry map for enum {name}\")) }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }} }}"
    )
}
